/**
 * @file
 * FaultInjector: executes a FaultPlan against a simulated machine.
 *
 * Timed faults (kill, crash, stall) are scheduled as simulation
 * events at their trigger time; probabilistic transport faults (drop,
 * corrupt, delay) are implemented as a Machine transport-fault hook
 * consulted once per routed bus message. All randomness comes from
 * one private xoshiro256** stream, so a run is reproduced exactly by
 * its (seed, plan) pair.
 *
 * The injector never touches application state directly: it uses the
 * kernel's kill/restart/stall primitives and records a FaultNotice
 * for every injection. The embedding application can observe notices
 * through a sink callback (the ray tracer's fault daemon turns them
 * into hybrid_mon tokens so the ZM4 trace shows the fault timeline).
 *
 * Zero-cost when disabled: an empty plan arms nothing - no scheduled
 * events, no transport hook - and a plan whose probabilistic specs
 * all have p=0 is pruned down to the same no-op.
 */

#ifndef FAULTS_INJECTOR_HH
#define FAULTS_INJECTOR_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "faults/plan.hh"
#include "sim/random.hh"
#include "suprenum/machine.hh"

namespace supmon
{
namespace faults
{

/** One injected fault, as it happened. */
struct FaultNotice
{
    FaultKind kind = FaultKind::DropMessages;
    /** Simulation time of the injection. */
    sim::Tick at = 0;
    /** Flat node index of the target (transport: destination). */
    unsigned node = 0;
    /** LWP id for kills; 0 otherwise. */
    unsigned lwp = 0;
    /** Compact parameter for trace emission (see injector.cc). */
    std::uint32_t param = 0;
};

/** Counters of everything the injector actually did. */
struct FaultStats
{
    std::uint64_t kills = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t messagesDropped = 0;
    std::uint64_t messagesCorrupted = 0;
    std::uint64_t messagesDelayed = 0;
    std::uint64_t stalls = 0;

    std::uint64_t
    injectedTotal() const
    {
        return kills + crashes + restarts + messagesDropped +
               messagesCorrupted + messagesDelayed + stalls;
    }
};

class FaultInjector
{
  public:
    using NoticeSink = std::function<void(const FaultNotice &)>;

    /**
     * @param machine the machine to perturb.
     * @param plan resolved plan (servant sugar already turned into
     *        node/lwp targets by the embedding application).
     * @param seed dedicated RNG seed for the transport-fault stream.
     */
    FaultInjector(suprenum::Machine &machine, FaultPlan plan,
                  std::uint64_t seed);

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Install @p sink; called synchronously at each injection. */
    void
    setNoticeSink(NoticeSink sink)
    {
        noticeSink = std::move(sink);
    }

    /**
     * Schedule the timed faults and install the transport hook.
     * Call once, before the simulation runs.
     */
    void arm();

    /** Whether arm() installed anything at all. */
    bool
    active() const
    {
        return armed;
    }

    const FaultStats &
    stats() const
    {
        return counters;
    }

    /** Every notice so far, in injection order. */
    const std::vector<FaultNotice> &
    log() const
    {
        return notices;
    }

  private:
    void fire(const FaultSpec &spec);
    void killTarget(const FaultSpec &spec);
    void crashNode(const FaultSpec &spec);
    void restartNode(unsigned flat_node,
                     std::vector<std::uint32_t> lwp_ids);
    void stallNode(const FaultSpec &spec);
    suprenum::TransportFault transportFault(const suprenum::Message &msg,
                                            bool is_ack);
    bool matchesNode(const FaultSpec &spec,
                     const suprenum::Message &msg) const;
    void notice(FaultKind kind, unsigned node, unsigned lwp,
                std::uint32_t param);

    suprenum::Machine &mach;
    FaultPlan plan;
    sim::Random rng;
    FaultStats counters;
    std::vector<FaultNotice> notices;
    NoticeSink noticeSink;
    std::vector<FaultSpec> transportSpecs;
    bool armed = false;
};

} // namespace faults
} // namespace supmon

#endif // FAULTS_INJECTOR_HH
