/**
 * @file
 * Configuration of a parallel ray tracer run: which program version,
 * workload, machine and monitoring setup to use.
 *
 * The four versions follow the paper's section 4.3:
 *  - V1: SUPRENUM's mailbox mechanism for both directions, jobs of a
 *    single ray, window size 3;
 *  - V2: a pool of communication agents forwards master->servant
 *    messages (agents are created on demand);
 *  - V3: agents in both directions, jobs are bundles of 50 rays;
 *  - V4: bundle size 100 and the pixel-queue length bug fixed.
 */

#ifndef PARTRACER_CONFIG_HH
#define PARTRACER_CONFIG_HH

#include <cstdint>
#include <string>

#include "hybrid/instrument.hh"
#include "raytracer/cost.hh"
#include "sim/types.hh"
#include "suprenum/config.hh"

namespace supmon
{
namespace par
{

enum class Version
{
    /** Mailbox communication, bundle 1, window 3. */
    V1Mailbox = 1,
    /** Communication agents master->servant. */
    V2AgentsForward = 2,
    /** Agents in both directions, bundle 50. */
    V3AgentsBoth = 3,
    /** Bundle 100 and fixed pixel-queue length. */
    V4Tuned = 4,
};

const char *versionName(Version v);

/**
 * Ray partitioning scheme (paper, section 4.1). Dynamic assignment is
 * the paper's contribution; the static schemes are the baselines its
 * discussion dismisses: contiguous patches suffer badly from the high
 * per-ray time variance, which interleaving only partly mitigates.
 */
enum class Assignment
{
    /** Dynamic ray partitioning under window flow control. */
    Dynamic,
    /** One contiguous block of pixels per servant, fixed upfront. */
    StaticContiguous,
    /** Pixels dealt round-robin (stride = numServants), fixed
     *  upfront. */
    StaticInterleaved,
};

const char *assignmentName(Assignment a);

enum class SceneKind
{
    /** The 25-primitive scene of the measurements. */
    Moderate,
    /** The >250 primitive fractal pyramid. */
    FractalPyramid,
    /** Parameterized n x n sphere grid (complexity sweep). */
    SphereGrid,
};

struct RunConfig
{
    Version version = Version::V1Mailbox;
    Assignment assignment = Assignment::Dynamic;

    // ----- workload ---------------------------------------------------
    SceneKind scene = SceneKind::Moderate;
    /** Subdivision level / grid size for parameterized scenes. */
    unsigned sceneParam = 3;
    unsigned imageWidth = 96;
    unsigned imageHeight = 96;
    /** Rays per pixel (the master's oversampling scheme). */
    unsigned oversampling = 1;
    /** Use the future-work BVH inside the servants. */
    bool useBvh = false;

    // ----- parallelization --------------------------------------------
    /** Number of servant processors (master adds one more). */
    unsigned numServants = 15;
    /** Window flow control: credits per servant. */
    unsigned windowSize = 3;
    /** Rays per job; overridden per version by applyVersionDefaults. */
    unsigned bundleSize = 1;
    /**
     * Length constant of the master's pixel queue: the maximum number
     * of pixels allowed "in the system" (queued + outstanding +
     * completed but not yet written). 1000 is the inadequate
     * constant of versions 1-3; version 4 fixes it.
     */
    std::size_t pixelQueueLimit = 1000;

    // ----- master cost model (calibrated, DESIGN.md section 5) --------
    sim::Tick adminBase = sim::microseconds(800);
    sim::Tick perPixelQueueInsert = sim::microseconds(500);
    sim::Tick perJobSendPrep = sim::microseconds(300);
    sim::Tick resultProcessBase = sim::microseconds(400);
    sim::Tick perRayResultProcess = sim::microseconds(700);
    sim::Tick writePixelsBase = sim::microseconds(300);
    sim::Tick perPixelWrite = sim::microseconds(700);
    /** Servant-side job unpack / result marshalling cost. */
    sim::Tick servantJobOverhead = sim::microseconds(600);
    /**
     * Ship the picture file to the disk node once this many written
     * pixels have accumulated (amortizes the disk-node rendezvous).
     */
    std::size_t diskShipThreshold = 128;
    /**
     * Run the Write Pixels activity only once this many contiguous
     * completed pixels are available (1 = write every stretch; the
     * paper's Figure 7 shows a write roughly every third cycle,
     * matching a batch of ~3).
     */
    std::size_t writeBatchMin = 1;

    // ----- per-ray simulated cost --------------------------------------
    rt::CostModel costModel;

    // ----- machine & monitoring ----------------------------------------
    suprenum::MachineParams machine;
    hybrid::MonitorMode monitorMode = hybrid::MonitorMode::Hybrid;
    /** Instrument Send Results Begin (added for Figure 9). */
    bool instrumentSendResults = false;
    /**
     * Instrument every job send on the master with a Job Send marker
     * carrying the job id. This is the protocol metadata the trace
     * validator's causality rule matches against the servants' Work
     * Begin events (src/validate/rules.hh). Off by default: the extra
     * hybrid_mon call per job perturbs the paper's timings.
     */
    bool instrumentJobSend = false;
    /**
     * Instrument the node operating systems (the paper's future
     * work): record every scheduler/communication action of every
     * node's kernel.
     */
    bool instrumentKernel = false;
    /** CPU cost charged per kernel probe event (0 = ideal probe). */
    sim::Tick kernelProbeCost = 0;
    /** Synchronize recorder clocks through the MTG (default on). */
    bool useGlobalClock = true;

    std::uint64_t seed = 1;

    /** Simulation safety limit. */
    sim::Tick tickLimit = sim::seconds(36000);

    // ----- fault tolerance & injection ---------------------------------
    /**
     * Use the fault-tolerant master/servant protocol: per-job ack
     * timeouts with exponential backoff, jobId-keyed duplicate
     * suppression, heartbeat liveness tracking and job reassignment.
     * Off by default - the healthy-run protocol stays byte-identical.
     */
    bool faultTolerant = false;
    /**
     * Fault plan text (faults/plan.hh grammar); empty = no injection.
     * Together with `seed` it reproduces a faulty run exactly.
     */
    std::string faultPlanText;
    /**
     * Deadline for the first result of a job. Must exceed the typical
     * job turnaround (window-depth queueing plus the bundle's compute
     * time), or healthy jobs are resent spuriously - wasteful, never
     * wrong (the duplicate suppression catches the echoes).
     */
    sim::Tick ackTimeout = sim::milliseconds(700);
    /** Backoff doubles per attempt; attempts are capped here. */
    unsigned maxJobAttempts = 5;
    /** Servant heartbeat period. */
    sim::Tick heartbeatInterval = sim::milliseconds(25);
    /**
     * Silence after which a servant is declared dead. The SUPRENUM
     * nodes schedule LWPs non-preemptively, so heartbeats pause on
     * BOTH ends of the channel: the servant's heartbeat LWP cannot be
     * dispatched while the servant renders a bundle (~bundle compute
     * time), and the master only *reads* beacons when its mailbox
     * drains (so its own longest CPU burst, a big Distribute or Write
     * Pixels stretch, counts too). The timeout must cover the sum of
     * the two worst bursts, not just a few lost beacons.
     */
    sim::Tick heartbeatTimeout = sim::milliseconds(800);
    /** Master mailbox poll timeout while jobs are outstanding. */
    sim::Tick recoveryPollInterval = sim::milliseconds(5);
    /** CPU cost of processing one heartbeat on the master. */
    sim::Tick heartbeatProcessCost = sim::microseconds(50);

    /** Total pixels of the image. */
    std::size_t
    totalPixels() const
    {
        return static_cast<std::size_t>(imageWidth) * imageHeight;
    }

    /**
     * Apply the paper's per-version parameters (bundle size, agent
     * usage, pixel-queue fix, Send Results instrumentation).
     */
    void applyVersionDefaults();

    /** Agents forward master->servant messages (V2 and later). */
    bool
    forwardAgents() const
    {
        return version != Version::V1Mailbox;
    }

    /** Agents forward servant->master messages (V3 and later). */
    bool
    reverseAgents() const
    {
        return version == Version::V3AgentsBoth ||
               version == Version::V4Tuned;
    }
};

} // namespace par
} // namespace supmon

#endif // PARTRACER_CONFIG_HH
