/**
 * @file
 * Measurement event tokens of the parallel ray tracer, matching the
 * instrumentation points of the paper's Figure 6 (horizontal bars in
 * the master/servant structure) plus the communication agent events
 * visible in Figure 9.
 *
 * Token layout: the high byte selects the instrumented object class
 * (1 = master, 2 = servant, 3 = agent); evaluation uses it to
 * demultiplex the per-node event stream into logical streams (all
 * processes of a node share the node's seven segment display).
 */

#ifndef PARTRACER_EVENTS_HH
#define PARTRACER_EVENTS_HH

#include <cstdint>

#include "trace/dictionary.hh"
#include "zm4/event_recorder.hh"

namespace supmon
{
namespace par
{

enum Token : std::uint16_t
{
    // ----- master (Figure 6, left) -----------------------------------
    evDistributeJobsBegin = 0x0101,
    evSendJobsBegin = 0x0102,
    evSendJobsEnd = 0x0103,
    evWaitForResultsBegin = 0x0104,
    evReceiveResultsBegin = 0x0105,
    evWritePixelsBegin = 0x0106,
    evWritePixelsEnd = 0x0107,
    /** Marker: a job message leaves the master; param = job id. Only
     *  emitted with RunConfig::instrumentJobSend - it is the metadata
     *  the validate::ProtocolCausalityRule matches against the
     *  servants' Work Begin events. */
    evJobSend = 0x0108,
    /** Marker: master initialization done, ray tracing phase begins. */
    evMasterStart = 0x0110,
    /** Marker: the complete image has been written. */
    evMasterDone = 0x0111,

    // ----- master recovery actions (fault-tolerant protocol) -----------
    /** A job's ack deadline expired; param = job id. */
    evFaultTimeout = 0x0120,
    /** The job was sent again (exponential backoff); param = job id. */
    evFaultRetry = 0x0121,
    /** The job moved to another servant; param = job id. */
    evFaultJobReassigned = 0x0122,
    /** Heartbeats stopped; servant declared dead; param = servant. */
    evFaultServantDead = 0x0123,
    /** A result for an already-completed job was discarded;
     *  param = job id. */
    evFaultDuplicateResult = 0x0124,
    /** A corrupted message was discarded; param = message tag. */
    evFaultCorruptDiscarded = 0x0125,

    // ----- servant (Figure 6, right) ----------------------------------
    evWaitForJobBegin = 0x0201,
    evWorkBegin = 0x0202,
    /** Added for the Figure 9 charts ("we inserted an additional
     *  measurement instruction at the beginning of Send Results"). */
    evSendResultsBegin = 0x0203,
    evServantStart = 0x0210,
    evServantDone = 0x0211,
    /** A corrupted job message was discarded; param = servant. */
    evServantCorruptJob = 0x0212,

    // ----- communication agent (Figure 9) ------------------------------
    evAgentWakeUp = 0x0301,
    evAgentForward = 0x0302,
    evAgentFreed = 0x0303,
    evAgentSleep = 0x0304,

    // ----- injected faults (emitted by the fault daemon) ---------------
    /** An LWP was killed; param = (node << 8) | lwp. */
    evInjectKill = 0x0401,
    /** A whole node crashed; param = node. */
    evInjectCrash = 0x0402,
    /** A crashed node restarted; param = node. */
    evInjectRestart = 0x0403,
    /** A bus message was lost; param = running drop count. */
    evInjectDrop = 0x0404,
    /** A bus message was garbled; param = running corrupt count. */
    evInjectCorrupt = 0x0405,
    /** A bus message was delayed; param = running delay count. */
    evInjectDelay = 0x0406,
    /** A node's dispatcher was frozen; param = node. */
    evInjectStall = 0x0407,
};

/** Object class encoded in a token's high byte. */
enum class TokenClass
{
    Master = 1,
    Servant = 2,
    Agent = 3,
    Fault = 4,
    Unknown = 0,
};

inline TokenClass
tokenClassOf(std::uint16_t token)
{
    switch (token >> 8) {
      case 1:
        return TokenClass::Master;
      case 2:
        return TokenClass::Servant;
      case 3:
        return TokenClass::Agent;
      case 4:
        return TokenClass::Fault;
      default:
        return TokenClass::Unknown;
    }
}

/** Logical streams per node (display demultiplexing). */
constexpr unsigned streamsPerNode = 8;

/**
 * Map a raw record to its logical stream: 8 streams per node -
 * 0 master-class, 1 servant-class, 2+k agent k (agents carry their
 * pool index in the event parameter).
 */
unsigned logicalStreamOf(const zm4::RawRecord &rec,
                         unsigned channels_per_recorder = 4);

/** Logical stream of an object class on a node. */
inline unsigned
streamOf(unsigned node_index, TokenClass cls, unsigned agent_index = 0)
{
    unsigned sub = 0;
    switch (cls) {
      case TokenClass::Master:
        sub = 0;
        break;
      case TokenClass::Servant:
        sub = 1;
        break;
      case TokenClass::Agent:
        sub = 2 + (agent_index < 6 ? agent_index : 5);
        break;
      case TokenClass::Fault:
        // The fault daemon shares the node's last stream slot; it
        // only exists on the master node, where agent pools stay
        // small enough not to collide.
        sub = 7;
        break;
      default:
        sub = 7;
        break;
    }
    return node_index * streamsPerNode + sub;
}

/**
 * Build the evaluation dictionary for the ray tracer's events: state
 * names match the paper's Gantt chart rows.
 */
trace::EventDictionary rayTracerDictionary();

/**
 * Name the logical streams of @p nodes ray tracer nodes by their
 * conventions (MASTER / NODE n, SERVANT n, AGENT k) in @p dict, for
 * tools that evaluate saved traces without a RunResult.
 */
void nameRayTracerStreams(trace::EventDictionary &dict,
                          unsigned nodes);

} // namespace par
} // namespace supmon

#endif // PARTRACER_EVENTS_HH
