/**
 * @file
 * Bookkeeping of the fault-tolerant master/servant protocol.
 *
 * Three plain (coroutine-free, simulation-free) classes so the logic
 * is unit-testable in isolation:
 *
 *  - BackoffSchedule: per-attempt ack deadlines with exponential
 *    backoff, capped at maxAttempts doublings;
 *  - JobTracker: outstanding jobs keyed by jobId - deadline expiry,
 *    duplicate-result suppression (a result for a job no longer
 *    tracked is a duplicate), reassignment bookkeeping;
 *  - LivenessTracker: last-heartbeat times per servant, overdue
 *    detection, dead-is-dead marking.
 *
 * The coroutines that drive them (faultTolerantMasterProcess,
 * heartbeatProcess, faultDaemonProcess) live in recovery.cc and are
 * declared in workers.hh next to the healthy-run processes.
 */

#ifndef PARTRACER_RECOVERY_HH
#define PARTRACER_RECOVERY_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "partracer/protocol.hh"
#include "sim/types.hh"

namespace supmon
{
namespace par
{

/** Exponential-backoff deadline schedule for job acks. */
struct BackoffSchedule
{
    /** Deadline distance of a job's first attempt. */
    sim::Tick ackTimeout = 0;
    /** Backoff stops doubling after this many attempts. */
    unsigned maxAttempts = 5;

    /** Deadline for attempt @p attempt (1-based) issued at @p now. */
    sim::Tick
    deadlineAfter(unsigned attempt, sim::Tick now) const
    {
        unsigned exp = attempt > 0 ? attempt - 1 : 0;
        const unsigned cap =
            maxAttempts > 0 ? maxAttempts - 1 : 0;
        if (exp > cap)
            exp = cap;
        if (exp > 20)
            exp = 20; // keep the shift far from overflow
        return now + (ackTimeout << exp);
    }
};

/** One job the master has sent and not yet seen a result for. */
struct PendingJob
{
    JobMsg job;
    /** Servant currently responsible. */
    unsigned servant = 0;
    /** Send attempts so far (1 = original send). */
    unsigned attempt = 1;
    sim::Tick sentAt = 0;
    sim::Tick deadline = 0;
    /** Queued for resend; expired() skips it until reassign(). */
    bool pendingResend = false;
};

/**
 * Outstanding-job table of the fault-tolerant master. jobId-keyed:
 * accepting a job removes it, so a second result with the same id
 * identifies itself as a duplicate.
 */
class JobTracker
{
  public:
    explicit JobTracker(BackoffSchedule schedule) : sched(schedule)
    {
    }

    /** Record the original send of @p job to @p servant. */
    void
    track(const JobMsg &job, unsigned servant, sim::Tick now)
    {
        PendingJob p;
        p.job = job;
        p.servant = servant;
        p.attempt = 1;
        p.sentAt = now;
        p.deadline = sched.deadlineAfter(1, now);
        pending[job.jobId] = p;
    }

    /**
     * A result for @p job_id arrived. @return the pending record if
     * the job was outstanding, std::nullopt if it was not (duplicate
     * or unknown - the caller must discard the result).
     */
    std::optional<PendingJob>
    accept(std::uint32_t job_id)
    {
        const auto it = pending.find(job_id);
        if (it == pending.end())
            return std::nullopt;
        PendingJob p = it->second;
        pending.erase(it);
        return p;
    }

    /** Jobs whose deadline has passed and that are not yet queued
     *  for resend, in jobId order. */
    std::vector<std::uint32_t>
    expired(sim::Tick now) const
    {
        std::vector<std::uint32_t> out;
        for (const auto &[id, p] : pending) {
            if (!p.pendingResend && p.deadline <= now)
                out.push_back(id);
        }
        return out;
    }

    /** Mark @p job_id as queued for resend (stops expiry reports). */
    void
    deferForResend(std::uint32_t job_id)
    {
        const auto it = pending.find(job_id);
        if (it != pending.end())
            it->second.pendingResend = true;
    }

    /** The resend happened: bump the attempt, move the job to
     *  @p servant and arm the backed-off deadline. */
    void
    reassign(std::uint32_t job_id, unsigned servant, sim::Tick now)
    {
        const auto it = pending.find(job_id);
        if (it == pending.end())
            return;
        PendingJob &p = it->second;
        ++p.attempt;
        p.servant = servant;
        p.sentAt = now;
        p.deadline = sched.deadlineAfter(p.attempt, now);
        p.pendingResend = false;
    }

    /** Jobs currently assigned to @p servant, in jobId order. */
    std::vector<std::uint32_t>
    jobsOn(unsigned servant) const
    {
        std::vector<std::uint32_t> out;
        for (const auto &[id, p] : pending) {
            if (p.servant == servant && !p.pendingResend)
                out.push_back(id);
        }
        return out;
    }

    const PendingJob *
    find(std::uint32_t job_id) const
    {
        const auto it = pending.find(job_id);
        return it == pending.end() ? nullptr : &it->second;
    }

    bool
    empty() const
    {
        return pending.empty();
    }

    std::size_t
    size() const
    {
        return pending.size();
    }

  private:
    BackoffSchedule sched;
    std::map<std::uint32_t, PendingJob> pending;
};

/** Heartbeat-based liveness table of the fault-tolerant master. */
class LivenessTracker
{
  public:
    LivenessTracker(unsigned servants, sim::Tick timeout)
        : deadline(timeout), lastBeat(servants, 0),
          dead(servants, 0)
    {
    }

    /** (Re)start the grace period of every live servant at @p now. */
    void
    reset(sim::Tick now)
    {
        for (std::size_t s = 0; s < lastBeat.size(); ++s) {
            if (!dead[s])
                lastBeat[s] = now;
        }
    }

    /** A heartbeat from @p servant arrived. Dead stays dead: a
     *  restarted servant gets no new jobs (its old results would
     *  be suppressed as duplicates anyway). */
    void
    beat(unsigned servant, sim::Tick now)
    {
        if (servant < lastBeat.size() && !dead[servant])
            lastBeat[servant] = now;
    }

    /** Live servants whose last heartbeat is older than the
     *  timeout. */
    std::vector<unsigned>
    newlyOverdue(sim::Tick now) const
    {
        std::vector<unsigned> out;
        for (std::size_t s = 0; s < lastBeat.size(); ++s) {
            if (!dead[s] && now > lastBeat[s] &&
                now - lastBeat[s] > deadline)
                out.push_back(static_cast<unsigned>(s));
        }
        return out;
    }

    void
    markDead(unsigned servant)
    {
        if (servant < dead.size())
            dead[servant] = 1;
    }

    bool
    isDead(unsigned servant) const
    {
        return servant < dead.size() && dead[servant] != 0;
    }

    unsigned
    aliveCount() const
    {
        unsigned n = 0;
        for (std::uint8_t d : dead)
            n += d == 0 ? 1 : 0;
        return n;
    }

    sim::Tick
    lastHeartbeat(unsigned servant) const
    {
        return servant < lastBeat.size() ? lastBeat[servant] : 0;
    }

  private:
    sim::Tick deadline;
    std::vector<sim::Tick> lastBeat;
    std::vector<std::uint8_t> dead;
};

} // namespace par
} // namespace supmon

#endif // PARTRACER_RECOVERY_HH
