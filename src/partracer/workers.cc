#include "workers.hh"

#include <algorithm>
#include <deque>

#include "partracer/events.hh"
#include "sim/logging.hh"

namespace supmon
{
namespace par
{

const char *
versionName(Version v)
{
    switch (v) {
      case Version::V1Mailbox:
        return "V1 (mailbox)";
      case Version::V2AgentsForward:
        return "V2 (agents master->servant)";
      case Version::V3AgentsBoth:
        return "V3 (agents both, bundle 50)";
      case Version::V4Tuned:
        return "V4 (bundle 100, queue fixed)";
    }
    return "?";
}

const char *
assignmentName(Assignment a)
{
    switch (a) {
      case Assignment::Dynamic:
        return "dynamic";
      case Assignment::StaticContiguous:
        return "static-contiguous";
      case Assignment::StaticInterleaved:
        return "static-interleaved";
    }
    return "?";
}

void
RunConfig::applyVersionDefaults()
{
    switch (version) {
      case Version::V1Mailbox:
        bundleSize = 1;
        instrumentSendResults = false;
        break;
      case Version::V2AgentsForward:
        bundleSize = 1;
        instrumentSendResults = true;
        break;
      case Version::V3AgentsBoth:
        bundleSize = 50;
        instrumentSendResults = true;
        break;
      case Version::V4Tuned:
        bundleSize = 100;
        instrumentSendResults = true;
        // The fix of the "inadequate constant for the length of the
        // master's queue of pixels": large enough for every window of
        // every servant plus one bundle of slack.
        pixelQueueLimit = static_cast<std::size_t>(bundleSize) *
                              windowSize * numServants +
                          bundleSize;
        break;
    }
}

sim::Task
masterProcess(suprenum::ProcessEnv env, RunContext &ctx)
{
    const RunConfig &cfg = *ctx.cfg;
    hybrid::Instrumentor mon(env, cfg.monitorMode);
    auto &truth = ctx.truth;

    if (cfg.numServants == 0)
        sim::fatal("the ray tracer needs at least one servant");
    if (cfg.pixelQueueLimit < cfg.bundleSize)
        sim::fatal("pixel queue limit (%zu) below the bundle size (%u): "
                   "no job could ever be formed",
                   cfg.pixelQueueLimit, cfg.bundleSize);

    // Initialization: the program and the scene description are
    // downloaded from the front-end computer to the partition
    // (section 2.2), then parsed. Excluded from the measured ray
    // tracing phase, as in the paper.
    co_await env.compute(
        ctx.machine->downloadTime(262144 + ctx.sceneBytes) +
        sim::milliseconds(10));
    co_await mon(evMasterStart, 0);

    const std::size_t total = cfg.totalPixels();
    std::size_t next_to_enqueue = 0;
    std::size_t write_frontier = 0;
    std::deque<std::uint32_t> pixel_queue;
    std::vector<std::uint8_t> completed(total, 0);
    std::vector<unsigned> credits(cfg.numServants, cfg.windowSize);
    std::size_t outstanding_pixels = 0;
    std::size_t unshipped = 0;
    std::uint32_t next_job_id = 1;
    unsigned rr_cursor = 0;
    sim::Tick cycle_start = env.now();

    while (write_frontier < total) {
        // ---------------- Distribute Jobs -------------------------
        co_await mon(evDistributeJobsBegin,
                     static_cast<std::uint32_t>(pixel_queue.size()));
        // Re-fill the pixel queue: new pixels may only be inserted
        // after pixels whose computation is completed have been
        // written onto disk (the in-flight window is bounded by the
        // queue length constant - the famous inadequate constant).
        std::size_t inserted = 0;
        while (next_to_enqueue < total &&
               next_to_enqueue - write_frontier < cfg.pixelQueueLimit) {
            pixel_queue.push_back(
                static_cast<std::uint32_t>(next_to_enqueue++));
            ++inserted;
        }
        truth.pixelQueueHighWater =
            std::max(truth.pixelQueueHighWater, pixel_queue.size());
        // The first unit of each per-pixel cost is absorbed in the
        // base constant (a single-pixel cycle pays only the base).
        co_await env.compute(cfg.adminBase +
                             (inserted > 0 ? inserted - 1 : 0) *
                                 cfg.perPixelQueueInsert);

        // ---------------- Send Jobs -------------------------------
        bool can_send = !pixel_queue.empty();
        if (can_send) {
            bool any_credit = false;
            for (unsigned c : credits)
                any_credit = any_credit || c > 0;
            can_send = any_credit;
        }
        if (can_send) {
            co_await mon(evSendJobsBegin, next_job_id);
            // "The number of times the code for Send Jobs is executed
            // in each loop may vary": one replacement job per received
            // result plus one window-deepening job per cycle. Windows
            // thus fill gradually while the master keeps collecting
            // results; this also bounds the number of concurrently
            // engaged communication agents, keeping the pool small as
            // observed in the paper.
            unsigned sends_left = 2;
            {
                while (!pixel_queue.empty() && sends_left > 0) {
                    // Completely dynamic assignment: prefer the least
                    // loaded servant (most credits left), rotating on
                    // ties, so jobs do not stack up in one servant's
                    // mailbox while others idle.
                    unsigned s = cfg.numServants;
                    unsigned best_credits = 0;
                    for (unsigned k = 0; k < cfg.numServants; ++k) {
                        const unsigned cand =
                            (rr_cursor + k) % cfg.numServants;
                        if (credits[cand] > best_credits) {
                            best_credits = credits[cand];
                            s = cand;
                        }
                    }
                    if (s == cfg.numServants)
                        break; // no credits anywhere
                    JobMsg job;
                    job.jobId = next_job_id++;
                    job.firstPixel = pixel_queue.front();
                    job.count = static_cast<std::uint32_t>(
                        std::min<std::size_t>(cfg.bundleSize,
                                              pixel_queue.size()));
                    job.servant = static_cast<std::uint16_t>(s);
                    for (unsigned i = 0; i < job.count; ++i)
                        pixel_queue.pop_front();
                    co_await env.compute(cfg.perJobSendPrep);
                    if (cfg.instrumentJobSend)
                        co_await mon(evJobSend, job.jobId);
                    if (cfg.forwardAgents()) {
                        // Indicate to a free agent via the shared
                        // variable, then relinquish the processor so
                        // the agents get scheduled.
                        ctx.masterPool->submit(
                            ctx.servantMailboxes[s]->pid(),
                            job.wireBytes(), tagJob, job);
                        co_await env.yield();
                    } else {
                        // Version 1: SUPRENUM mailbox communication.
                        // This send behaves synchronously - see
                        // suprenum/mailbox.hh.
                        co_await env.send(
                            ctx.servantMailboxes[s]->pid(),
                            job.wireBytes(), tagJob, job);
                    }
                    --credits[s];
                    outstanding_pixels += job.count;
                    ++truth.jobsSent;
                    rr_cursor = (s + 1) % cfg.numServants;
                    --sends_left;
                }
            }
            co_await mon(evSendJobsEnd, next_job_id);
        }

        // ---------------- Wait for / Receive Results ---------------
        if (outstanding_pixels > 0) {
            co_await mon(evWaitForResultsBegin, 0);
            suprenum::Message msg =
                co_await ctx.masterMailbox->read(env);
            const auto &res = suprenum::payloadAs<ResultMsg>(msg);
            co_await mon(evReceiveResultsBegin, res.jobId);
            const std::size_t extra_rays =
                res.colors.empty() ? 0 : res.colors.size() - 1;
            co_await env.compute(cfg.resultProcessBase +
                                 extra_rays * cfg.perRayResultProcess);
            for (std::size_t i = 0; i < res.colors.size(); ++i) {
                const std::size_t px =
                    res.firstPixel + i * res.stride;
                ctx.image->setLinear(px, res.colors[i]);
                completed[px] = 1;
            }
            if (res.servant >= credits.size())
                sim::panic("result from unknown servant %u",
                           res.servant);
            ++credits[res.servant];
            outstanding_pixels -= res.colors.size();
            ++truth.resultsReceived;
            truth.lastResultReceived = env.now();
        }

        // ---------------- Write Pixels -----------------------------
        // Pixels have to be written in correct ordering: whenever a
        // continuous stretch of pixels has been processed, the
        // results are written onto disk.
        std::size_t writable = 0;
        while (write_frontier + writable < total &&
               completed[write_frontier + writable])
            ++writable;
        const bool final_stretch =
            writable > 0 && write_frontier + writable == total;
        if (writable >= std::max<std::size_t>(1, cfg.writeBatchMin) ||
            final_stretch) {
            co_await mon(evWritePixelsBegin,
                         static_cast<std::uint32_t>(writable));
            co_await env.compute(cfg.writePixelsBase +
                                 (writable - 1) * cfg.perPixelWrite);
            write_frontier += writable;
            truth.pixelsWritten += writable;
            unshipped += writable;
            // Ship the file data to the disk node in batches; the
            // rendezvous with the disk service is paid once per batch.
            if (unshipped >= cfg.diskShipThreshold ||
                write_frontier == total) {
                suprenum::DiskWriteRequest req;
                req.bytes = static_cast<std::uint32_t>(unshipped) * 6;
                co_await env.send(
                    ctx.machine->diskService(env.pid().node.cluster),
                    req.bytes, suprenum::tagDiskWrite, req);
                unshipped = 0;
                ++truth.writeOps;
            }
            co_await mon(evWritePixelsEnd,
                         static_cast<std::uint32_t>(writable));
        }

        const sim::Tick now = env.now();
        truth.masterCycleMs.push(sim::toMilliseconds(now - cycle_start));
        cycle_start = now;
    }

    // Ask every servant to terminate itself. The rendering is done,
    // so the master simply sends the quit jobs synchronously (burst-
    // submitting them through the agent pool would only grow it).
    for (unsigned s = 0; s < cfg.numServants; ++s) {
        JobMsg quit;
        quit.quit = true;
        quit.servant = static_cast<std::uint16_t>(s);
        co_await env.send(ctx.servantMailboxes[s]->pid(),
                          quit.wireBytes(), tagJob, quit);
    }

    co_await mon(evMasterDone, 0);
    truth.masterDoneAt = env.now();
    // Termination of the initial process terminates the application.
}


sim::Task
staticMasterProcess(suprenum::ProcessEnv env, RunContext &ctx)
{
    const RunConfig &cfg = *ctx.cfg;
    hybrid::Instrumentor mon(env, cfg.monitorMode);
    auto &truth = ctx.truth;

    if (cfg.numServants == 0)
        sim::fatal("the ray tracer needs at least one servant");

    co_await env.compute(
        ctx.machine->downloadTime(262144 + ctx.sceneBytes) +
        sim::milliseconds(10));
    co_await mon(evMasterStart, 0);

    const std::size_t total = cfg.totalPixels();
    std::vector<std::uint8_t> completed(total, 0);
    const bool interleaved =
        cfg.assignment == Assignment::StaticInterleaved;

    // ---------------- Distribute + Send (once, upfront) -------------
    co_await mon(evDistributeJobsBegin,
                 static_cast<std::uint32_t>(total));
    co_await env.compute(cfg.adminBase +
                         (total - 1) * cfg.perPixelQueueInsert);
    co_await mon(evSendJobsBegin, 1);
    std::size_t outstanding = 0;
    for (unsigned s = 0; s < cfg.numServants; ++s) {
        JobMsg job;
        job.jobId = s + 1;
        job.servant = static_cast<std::uint16_t>(s);
        if (interleaved) {
            job.firstPixel = s;
            job.stride = cfg.numServants;
            job.count = static_cast<std::uint32_t>(
                (total - s + cfg.numServants - 1) / cfg.numServants);
        } else {
            const std::size_t chunk =
                (total + cfg.numServants - 1) / cfg.numServants;
            const std::size_t first = s * chunk;
            if (first >= total)
                break;
            job.firstPixel = static_cast<std::uint32_t>(first);
            job.stride = 1;
            job.count = static_cast<std::uint32_t>(
                std::min(chunk, total - first));
        }
        outstanding += job.count;
        co_await env.compute(cfg.perJobSendPrep);
        if (cfg.instrumentJobSend)
            co_await mon(evJobSend, job.jobId);
        if (cfg.forwardAgents()) {
            ctx.masterPool->submit(ctx.servantMailboxes[s]->pid(),
                                   job.wireBytes(), tagJob, job);
            co_await env.yield();
        } else {
            co_await env.send(ctx.servantMailboxes[s]->pid(),
                              job.wireBytes(), tagJob, job);
        }
        ++truth.jobsSent;
    }
    co_await mon(evSendJobsEnd, 1);

    // ---------------- Collect results --------------------------------
    std::size_t write_frontier = 0;
    std::size_t unshipped = 0;
    sim::Tick cycle_start = env.now();
    while (outstanding > 0) {
        co_await mon(evWaitForResultsBegin, 0);
        suprenum::Message msg = co_await ctx.masterMailbox->read(env);
        const auto &res = suprenum::payloadAs<ResultMsg>(msg);
        co_await mon(evReceiveResultsBegin, res.jobId);
        const std::size_t extra_rays =
            res.colors.empty() ? 0 : res.colors.size() - 1;
        co_await env.compute(cfg.resultProcessBase +
                             extra_rays * cfg.perRayResultProcess);
        for (std::size_t i = 0; i < res.colors.size(); ++i) {
            const std::size_t px = res.firstPixel + i * res.stride;
            ctx.image->setLinear(px, res.colors[i]);
            completed[px] = 1;
        }
        outstanding -= res.colors.size();
        ++truth.resultsReceived;
        truth.lastResultReceived = env.now();

        std::size_t writable = 0;
        while (write_frontier + writable < total &&
               completed[write_frontier + writable])
            ++writable;
        const bool final_stretch =
            writable > 0 && write_frontier + writable == total;
        if (writable >= std::max<std::size_t>(1, cfg.writeBatchMin) ||
            final_stretch) {
            co_await mon(evWritePixelsBegin,
                         static_cast<std::uint32_t>(writable));
            co_await env.compute(cfg.writePixelsBase +
                                 (writable - 1) * cfg.perPixelWrite);
            write_frontier += writable;
            truth.pixelsWritten += writable;
            unshipped += writable;
            if (unshipped >= cfg.diskShipThreshold ||
                write_frontier == total) {
                suprenum::DiskWriteRequest req;
                req.bytes = static_cast<std::uint32_t>(unshipped) * 6;
                co_await env.send(
                    ctx.machine->diskService(env.pid().node.cluster),
                    req.bytes, suprenum::tagDiskWrite, req);
                unshipped = 0;
                ++truth.writeOps;
            }
            co_await mon(evWritePixelsEnd,
                         static_cast<std::uint32_t>(writable));
        }
        const sim::Tick now = env.now();
        truth.masterCycleMs.push(sim::toMilliseconds(now - cycle_start));
        cycle_start = now;
    }

    for (unsigned s = 0; s < cfg.numServants; ++s) {
        JobMsg quit;
        quit.quit = true;
        quit.servant = static_cast<std::uint16_t>(s);
        co_await env.send(ctx.servantMailboxes[s]->pid(),
                          quit.wireBytes(), tagJob, quit);
    }
    co_await mon(evMasterDone, 0);
    truth.masterDoneAt = env.now();
}

sim::Task
servantProcess(suprenum::ProcessEnv env, RunContext &ctx, unsigned index)
{
    const RunConfig &cfg = *ctx.cfg;
    hybrid::Instrumentor mon(env, cfg.monitorMode);
    auto &truth = ctx.truth;
    sim::Random rng(cfg.seed * 7919u + index + 1);

    // Initialization: receive the program and the replicated scene
    // description (ray partitioning's redundant storage).
    co_await env.compute(ctx.machine->downloadTime(ctx.sceneBytes) +
                         sim::milliseconds(10));
    co_await mon(evServantStart, index);

    AgentPool *pool = cfg.reverseAgents() && index < ctx.servantPools.size()
                          ? ctx.servantPools[index]
                          : nullptr;

    for (;;) {
        co_await mon(evWaitForJobBegin, index);
        suprenum::Message msg =
            co_await ctx.servantMailboxes[index]->read(env);
        if (cfg.faultTolerant && msg.corrupted) {
            // The job arrived garbled; discard it and let the
            // master's ack timeout resend it.
            co_await mon(evServantCorruptJob, index);
            continue;
        }
        const auto job = suprenum::payloadAs<JobMsg>(msg);
        if (job.quit)
            break;

        co_await mon(evWorkBegin, job.jobId);
        if (truth.firstWorkBegin == 0)
            truth.firstWorkBegin = env.now();

        // Trace the rays of the bundle natively; charge the simulated
        // MC68020 time derived from the counted work.
        rt::TraceCounters counters;
        ResultMsg res;
        res.jobId = job.jobId;
        res.firstPixel = job.firstPixel;
        res.stride = job.stride;
        res.servant = static_cast<std::uint16_t>(index);
        res.colors.reserve(job.count);
        for (std::uint32_t i = 0; i < job.count; ++i) {
            res.colors.push_back(ctx.renderer->tracePixel(
                job.firstPixel + i * job.stride, rng, counters));
        }
        const sim::Tick cost =
            cfg.costModel.costOf(counters) + cfg.servantJobOverhead;
        if (job.count > 0) {
            truth.rayCostMs.push(sim::toMilliseconds(cost) /
                                 job.count);
        }
        truth.servantWorkTime[index] += cost;
        co_await env.compute(cost);

        if (cfg.instrumentSendResults)
            co_await mon(evSendResultsBegin, job.jobId);
        // Wire size must be computed before the payload is moved into
        // the message (argument evaluation order is unspecified).
        const std::uint32_t res_bytes = res.wireBytes();
        if (pool) {
            // Version 3+: agents for the reverse communication too.
            pool->submit(ctx.masterMailbox->pid(), res_bytes, tagResult,
                         std::move(res));
            co_await env.yield();
        } else {
            co_await env.send(ctx.masterMailbox->pid(), res_bytes,
                              tagResult, std::move(res));
        }
    }

    co_await mon(evServantDone, index);
}

} // namespace par
} // namespace supmon
