/**
 * @file
 * The master and servant processes of the dynamic-ray-partitioning
 * parallel ray tracer (paper, section 4.2, Figures 5 and 6).
 *
 * The master administrates the work: he keeps a queue of unfinished
 * pixels, assigns jobs (bundles of rays) to the servants under window
 * flow control, collects results, and writes the output picture file
 * in correct pixel order. The servants trace the rays of their jobs
 * and return the colour values; they never talk to each other.
 *
 * All behavioural differences between versions 1-4 are driven by the
 * RunConfig: mailbox vs. agent forwarding per direction, bundle size,
 * and the pixel-queue length constant.
 */

#ifndef PARTRACER_WORKERS_HH
#define PARTRACER_WORKERS_HH

#include <deque>
#include <memory>
#include <vector>

#include "faults/injector.hh"
#include "partracer/agent.hh"
#include "partracer/config.hh"
#include "partracer/protocol.hh"
#include "raytracer/image.hh"
#include "raytracer/render.hh"
#include "sim/stats.hh"
#include "suprenum/machine.hh"
#include "suprenum/mailbox.hh"

namespace supmon
{
namespace par
{

/**
 * Host-side counters of the fault-tolerant protocol's recovery
 * actions (mirrored in the trace by the evFault* tokens).
 */
struct RecoveryStats
{
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t reassigned = 0;
    std::uint64_t duplicatesSuppressed = 0;
    std::uint64_t corruptDiscarded = 0;
    std::uint64_t servantsDeclaredDead = 0;
    std::uint64_t heartbeatsReceived = 0;
};

/**
 * Everything master and servants share during a run: configuration,
 * machine, renderer, mailbox addresses, pools and host-side ground
 * truth bookkeeping.
 */
struct RunContext
{
    const RunConfig *cfg = nullptr;
    suprenum::Machine *machine = nullptr;
    const rt::Renderer *renderer = nullptr;
    rt::Image *image = nullptr;
    /** Size of the replicated scene description (download model). */
    std::uint64_t sceneBytes = 0;

    suprenum::Mailbox *masterMailbox = nullptr;
    std::vector<suprenum::Mailbox *> servantMailboxes;
    /** Agent pool on the master node (V2+), else nullptr. */
    AgentPool *masterPool = nullptr;
    /** Agent pools on the servant nodes (V3+), else empty. */
    std::vector<AgentPool *> servantPools;

    /** Host-side ground truth (independent of the monitor). */
    struct GroundTruth
    {
        std::uint64_t jobsSent = 0;
        std::uint64_t resultsReceived = 0;
        std::uint64_t pixelsWritten = 0;
        std::uint64_t writeOps = 0;
        sim::Tick firstWorkBegin = 0;
        sim::Tick lastResultReceived = 0;
        sim::Tick masterDoneAt = 0;
        /** Simulated work time accumulated per servant. */
        std::vector<sim::Tick> servantWorkTime;
        sim::SummaryStat masterCycleMs;
        sim::SummaryStat rayCostMs;
        std::size_t pixelQueueHighWater = 0;
        RecoveryStats recovery;
    } truth;

    // ----- fault tolerance (cfg->faultTolerant) ------------------------
    /** Servant process pids (liveness checks, kill-target sugar). */
    std::vector<suprenum::Pid> servantPids;
    /** Set by the master before sending quit jobs; heartbeat
     *  processes exit at their next period. */
    bool stopHeartbeats = false;
    /** Injected-fault notices awaiting the fault daemon (trace
     *  emission); filled by the injector's notice sink. */
    std::deque<faults::FaultNotice> *faultNotices = nullptr;
    /** Wakes the fault daemon when a notice arrives. */
    suprenum::EventFlag *faultFlag = nullptr;
};

/** The master process (the application's initial process). */
sim::Task masterProcess(suprenum::ProcessEnv env, RunContext &ctx);

/** Master variant for the static partitioning baselines. */
sim::Task staticMasterProcess(suprenum::ProcessEnv env,
                              RunContext &ctx);

/** Servant process @p index. */
sim::Task servantProcess(suprenum::ProcessEnv env, RunContext &ctx,
                         unsigned index);

// ----- fault-tolerant protocol (recovery.cc) --------------------------

/**
 * Master variant implementing the fault-tolerant protocol: ack
 * timeouts with exponential backoff, duplicate-result suppression,
 * heartbeat liveness tracking, and reassignment of jobs from dead
 * servants. Selected by RunConfig::faultTolerant.
 */
sim::Task faultTolerantMasterProcess(suprenum::ProcessEnv env,
                                     RunContext &ctx);

/** Liveness beacon process for servant @p index (its node). */
sim::Task heartbeatProcess(suprenum::ProcessEnv env, RunContext &ctx,
                           unsigned index);

/**
 * Daemon on the master node that turns injector FaultNotices into
 * evInject* trace tokens (so the ZM4 trace shows the fault timeline
 * without racing the display's pattern sequences).
 */
sim::Task faultDaemonProcess(suprenum::ProcessEnv env, RunContext &ctx);

} // namespace par
} // namespace supmon

#endif // PARTRACER_WORKERS_HH
