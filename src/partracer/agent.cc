#include "agent.hh"

#include "partracer/events.hh"
#include "sim/logging.hh"

namespace supmon
{
namespace par
{

void
AgentPool::submit(suprenum::Pid dst, std::uint32_t bytes, int tag,
                  std::any payload)
{
    Work work;
    work.dst = dst;
    work.bytes = bytes;
    work.tag = tag;
    work.payload = std::move(payload);
    pending.push_back(std::move(work));

    if (wakeFlag.waiterCount() > 0) {
        // Indicate to an agent which is currently not engaged in some
        // other communication.
        wakeFlag.signalOne();
        return;
    }
    // No free agent is available: a new agent is created and added to
    // the pool. It starts ready and will pick the message up.
    created.push_back(kern.simulation().now());
    const unsigned index = static_cast<unsigned>(agents++);
    kern.spawn(prefix + "-agent-" + std::to_string(index),
               [this, index](suprenum::ProcessEnv env) {
                   return agentProcess(env, this, index);
               },
               ownerTeam);
}

sim::Task
AgentPool::agentProcess(suprenum::ProcessEnv env, AgentPool *pool,
                        unsigned index)
{
    hybrid::Instrumentor mon(env, pool->monMode);
    const std::uint32_t id_field = static_cast<std::uint32_t>(index)
                                   << 24;
    for (;;) {
        co_await mon(evAgentWakeUp, id_field);
        bool did_work = false;
        while (!pool->pending.empty()) {
            did_work = true;
            Work work = std::move(pool->pending.front());
            pool->pending.pop_front();
            co_await mon(
                evAgentForward,
                id_field | static_cast<std::uint32_t>(
                               pool->forwarded & 0xffffffu));
            // The forward blocks in the rendezvous until the receiver
            // accepts the message...
            co_await env.send(work.dst, work.bytes, work.tag,
                              std::move(work.payload));
            // ...at which point the agent is freed.
            co_await mon(evAgentFreed, id_field);
            ++pool->forwarded;
        }
        if (!did_work)
            ++pool->spurious;
        co_await mon(evAgentSleep, id_field);
        co_await env.wait(pool->wakeFlag);
    }
}

} // namespace par
} // namespace supmon
