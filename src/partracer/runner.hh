/**
 * @file
 * One-call experiment runner: build the simulated SUPRENUM partition,
 * attach the ZM4 through the seven-segment interfaces, start master
 * and servants, run to completion, then collect and merge the event
 * traces and compute the paper's metrics.
 *
 * This is the top-level public API most examples and benches use:
 *
 * @code
 * par::RunConfig cfg;
 * cfg.version = par::Version::V2AgentsForward;
 * cfg.applyVersionDefaults();
 * par::RunResult res = par::runRayTracer(cfg);
 * std::cout << res.servantUtilizationMeasured;
 * @endcode
 */

#ifndef PARTRACER_RUNNER_HH
#define PARTRACER_RUNNER_HH

#include <memory>
#include <vector>

#include "faults/injector.hh"
#include "partracer/config.hh"
#include "partracer/events.hh"
#include "partracer/workers.hh"
#include "raytracer/image.hh"
#include "trace/activity.hh"
#include "trace/dictionary.hh"
#include "trace/event.hh"

namespace supmon
{
namespace par
{

struct RunResult
{
    RunConfig config;

    /** Did the application terminate (false = deadlock/timeout)? */
    bool completed = false;

    /** The merged, time-ordered global event trace. */
    std::vector<trace::TraceEvent> events;
    /** Dictionary with the ray tracer's event and stream names. */
    trace::EventDictionary dictionary;

    /** The rendered image (host side). */
    std::unique_ptr<rt::Image> image;

    // ----- metrics of the ray tracing phase ----------------------------
    /** Phase window used for utilization. */
    sim::Tick phaseBegin = 0;
    sim::Tick phaseEnd = 0;
    /** Servant utilization from the *measured* trace (the paper's
     *  number); negative if monitoring was off. */
    double servantUtilizationMeasured = -1.0;
    /** Ground-truth utilization from host-side bookkeeping. */
    double servantUtilizationActual = 0.0;
    /** Completion time of the whole application. */
    sim::Tick applicationTime = 0;

    // ----- protocol statistics -----------------------------------------
    std::uint64_t jobsSent = 0;
    std::uint64_t resultsReceived = 0;
    std::uint64_t writeOps = 0;
    std::size_t pixelQueueHighWater = 0;
    std::size_t missingPixels = 0;
    std::size_t duplicatedPixels = 0;
    /** Agents created on the master node (paper: ~5 for V2). */
    std::size_t masterAgentPoolSize = 0;
    /** Agents created per servant node (V3+). */
    std::vector<std::size_t> servantAgentPoolSizes;
    sim::SummaryStat masterCycleMs;
    sim::SummaryStat rayCostMs;

    // ----- monitoring statistics ----------------------------------------
    std::uint64_t eventsRecorded = 0;
    std::uint64_t eventsLost = 0;
    std::uint64_t protocolErrors = 0;

    // ----- fault injection & recovery ------------------------------------
    /** Messages dropped at delivery because the destination process
     *  had terminated (all nodes, healthy runs included). */
    std::uint64_t messagesDroppedTerminated = 0;
    /** What the injector actually did (all zero without a plan). */
    faults::FaultStats faults;
    /** Recovery actions of the fault-tolerant master. */
    RecoveryStats recovery;

    // ----- OS instrumentation (cfg.instrumentKernel) ---------------------
    /** Total kernel probe events across all nodes. */
    std::uint64_t kernelEvents = 0;
    /** Delay from message delivery to the mailbox process's dispatch
     *  on the servant nodes - the scheduling behaviour behind the
     *  synchronous mailboxes. */
    sim::SummaryStat mailboxSchedulingDelayMs;

    /** Logical streams of the servants (for Gantt rendering). */
    std::vector<unsigned> servantStreams;
    /** Logical stream of the master. */
    unsigned masterStream = 0;

    /** Build the activity map of the merged trace. */
    trace::ActivityMap
    activity() const
    {
        return trace::ActivityMap::build(events, dictionary, phaseEnd);
    }
};

/** Run the configured parallel ray tracer end to end. */
RunResult runRayTracer(const RunConfig &cfg);

} // namespace par
} // namespace supmon

#endif // PARTRACER_RUNNER_HH
