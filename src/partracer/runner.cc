#include "runner.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "faults/plan.hh"
#include "raytracer/scenes.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "trace/harness.hh"

namespace supmon
{
namespace par
{

namespace
{

rt::Scene
buildScene(const RunConfig &cfg)
{
    switch (cfg.scene) {
      case SceneKind::Moderate:
        return rt::moderateScene();
      case SceneKind::FractalPyramid:
        return rt::fractalPyramid(cfg.sceneParam);
      case SceneKind::SphereGrid:
        return rt::sphereGrid(cfg.sceneParam);
    }
    return rt::moderateScene();
}

rt::Camera::Setup
buildCamera(const RunConfig &cfg)
{
    switch (cfg.scene) {
      case SceneKind::Moderate:
        return rt::moderateCamera();
      case SceneKind::FractalPyramid:
        return rt::pyramidCamera();
      case SceneKind::SphereGrid:
        return rt::sphereGridCamera(cfg.sceneParam);
    }
    return rt::moderateCamera();
}

} // namespace

RunResult
runRayTracer(const RunConfig &cfg)
{
    RunResult result;
    result.config = cfg;

    const unsigned num_nodes = cfg.numServants + 1;

    // ----- machine ------------------------------------------------------
    suprenum::MachineParams mp = cfg.machine;
    const unsigned needed_clusters =
        (num_nodes + mp.nodesPerCluster - 1) / mp.nodesPerCluster;
    if (mp.numClusters < needed_clusters)
        mp.numClusters = needed_clusters;

    sim::Simulation simul;
    suprenum::Machine machine(simul, mp);

    // ----- workload -------------------------------------------------------
    const rt::Scene scene = buildScene(cfg);
    const rt::Camera camera(buildCamera(cfg), cfg.imageWidth,
                            cfg.imageHeight);
    rt::Renderer::Options ropts;
    ropts.oversampling = cfg.oversampling;
    ropts.useBvh = cfg.useBvh;
    const rt::Renderer renderer(scene, camera, ropts);
    auto image =
        std::make_unique<rt::Image>(cfg.imageWidth, cfg.imageHeight);

    // The scene description is replicated on every node involved
    // (ray partitioning's storage disadvantage).
    for (unsigned n = 0; n < num_nodes; ++n) {
        machine.nodeByIndex(n).allocateMemory(scene.descriptionBytes(),
                                              "scene description");
    }

    // ----- ZM4 monitor -----------------------------------------------------
    const bool logfile_mode =
        cfg.monitorMode == hybrid::MonitorMode::LogFile;
    const bool monitored =
        cfg.monitorMode != hybrid::MonitorMode::Off && !logfile_mode;
    if (logfile_mode) {
        // The rudimentary method: no ZM4 - the nodes' own
        // unsynchronized clocks stamp the log records. Give each node
        // a realistic skew derived from the seed.
        sim::Random clock_rng(cfg.seed ^ 0x10c5u);
        for (unsigned n = 0; n < num_nodes; ++n) {
            const auto offset = static_cast<sim::TickDelta>(
                clock_rng.uniformInt(0, 6000000)) -
                3000000; // +/- 3 ms
            const double drift =
                clock_rng.uniformReal(-40.0, 40.0); // ppm
            machine.nodeByIndex(n).configureLocalClock(offset, drift);
        }
    }
    std::unique_ptr<trace::MonitoringHarness> zm4;
    if (monitored) {
        zm4 = std::make_unique<trace::MonitoringHarness>(machine,
                                                         num_nodes);
        zm4->startMeasurement();
        if (!cfg.useGlobalClock) {
            // Demonstration mode: give each recorder its own skewed
            // clock (as if the tick channel were unplugged).
            for (unsigned r = 0; r < zm4->recorderCount(); ++r) {
                zm4->configureSkew(
                    r, static_cast<sim::TickDelta>(r) * 1500 - 1500,
                    (r % 2 ? 40.0 : -25.0));
            }
        }
    }

    // ----- OS instrumentation (future work) ---------------------------------
    struct KernelEntry
    {
        unsigned node;
        sim::Tick at;
        std::uint16_t token;
        std::uint32_t param;
    };
    std::vector<KernelEntry> kernel_trace;
    if (cfg.instrumentKernel) {
        for (unsigned n = 0; n < num_nodes; ++n) {
            machine.nodeByIndex(n).setKernelProbe(
                [&kernel_trace, &simul, n](std::uint16_t token,
                                           std::uint32_t param) {
                    kernel_trace.push_back(
                        {n, simul.now(), token, param});
                },
                cfg.kernelProbeCost);
        }
    }

    // ----- application processes ------------------------------------------
    RunContext ctx;
    ctx.cfg = &cfg;
    ctx.machine = &machine;
    ctx.renderer = &renderer;
    ctx.image = image.get();
    ctx.sceneBytes = scene.descriptionBytes();
    ctx.truth.servantWorkTime.assign(cfg.numServants, 0);

    // Mailboxes first so every process knows its peers' addresses.
    suprenum::Mailbox master_mailbox(machine.nodeByIndex(0),
                                     "master-mailbox");
    ctx.masterMailbox = &master_mailbox;

    std::vector<std::unique_ptr<suprenum::Mailbox>> servant_mailboxes;
    for (unsigned s = 0; s < cfg.numServants; ++s) {
        servant_mailboxes.push_back(std::make_unique<suprenum::Mailbox>(
            machine.nodeByIndex(s + 1),
            "servant-" + std::to_string(s) + "-mailbox"));
        ctx.servantMailboxes.push_back(servant_mailboxes.back().get());
    }

    std::unique_ptr<AgentPool> master_pool;
    if (cfg.forwardAgents()) {
        master_pool = std::make_unique<AgentPool>(
            machine.nodeByIndex(0), "master", cfg.monitorMode);
        ctx.masterPool = master_pool.get();
    }
    std::vector<std::unique_ptr<AgentPool>> servant_pools;
    if (cfg.reverseAgents()) {
        for (unsigned s = 0; s < cfg.numServants; ++s) {
            servant_pools.push_back(std::make_unique<AgentPool>(
                machine.nodeByIndex(s + 1),
                "servant-" + std::to_string(s), cfg.monitorMode));
            ctx.servantPools.push_back(servant_pools.back().get());
        }
    }

    for (unsigned s = 0; s < cfg.numServants; ++s) {
        ctx.servantPids.push_back(
            machine.spawnOn(machine.nodeIdByIndex(s + 1),
                            "servant-" + std::to_string(s),
                            [&ctx, s](suprenum::ProcessEnv env) {
                                return servantProcess(env, ctx, s);
                            }));
    }
    const bool static_mode = cfg.assignment != Assignment::Dynamic;
    if (cfg.faultTolerant && static_mode) {
        sim::fatal("the fault-tolerant protocol requires dynamic "
                   "assignment (static partitioning cannot reassign)");
    }
    if (cfg.faultTolerant) {
        // One liveness beacon per servant node; it falls silent when
        // its servant terminates (or the node crashes with it).
        for (unsigned s = 0; s < cfg.numServants; ++s) {
            machine.spawnOn(machine.nodeIdByIndex(s + 1),
                            "heartbeat-" + std::to_string(s),
                            [&ctx, s](suprenum::ProcessEnv env) {
                                return heartbeatProcess(env, ctx, s);
                            });
        }
    }

    // ----- fault injection ---------------------------------------------
    // Everything here is conditional on a non-empty plan: a healthy
    // run must not even construct differently (LWP ids and node-0
    // timing feed the golden traces).
    std::deque<faults::FaultNotice> fault_notices;
    suprenum::EventFlag fault_flag(machine.nodeByIndex(0));
    std::unique_ptr<faults::FaultInjector> injector;
    if (!cfg.faultPlanText.empty()) {
        faults::PlanParseResult parsed =
            faults::parseFaultPlan(cfg.faultPlanText);
        if (!parsed.ok())
            sim::fatal("%s", parsed.error.c_str());
        faults::FaultPlan plan = std::move(parsed.plan);
        for (faults::FaultSpec &f : plan.faults) {
            if (f.servant == faults::FaultSpec::noTarget)
                continue;
            if (f.servant >= cfg.numServants) {
                sim::fatal("fault plan: servant %u out of range "
                           "(%u servants)",
                           f.servant, cfg.numServants);
            }
            f.node = f.servant + 1;
            if (f.kind == faults::FaultKind::KillLwp)
                f.lwp = ctx.servantPids[f.servant].lwp;
        }
        // Dedicated RNG stream: the injector's coin flips never
        // disturb the application's (golden-locked) random streams.
        injector = std::make_unique<faults::FaultInjector>(
            machine, std::move(plan),
            sim::deriveSeed(cfg.seed, 0xfau));
        injector->setNoticeSink(
            [&ctx, &fault_notices, &fault_flag,
             &master_mailbox](const faults::FaultNotice &n) {
                if (n.kind == faults::FaultKind::CrashNode) {
                    // The node memory is gone: deposited-but-unread
                    // mailbox messages are lost with it.
                    if (n.node == 0)
                        master_mailbox.clearQueue();
                    else if (n.node - 1 < ctx.servantMailboxes.size())
                        ctx.servantMailboxes[n.node - 1]->clearQueue();
                }
                fault_notices.push_back(n);
                fault_flag.signalAll();
            });
        injector->arm();
        if (injector->active()) {
            ctx.faultNotices = &fault_notices;
            ctx.faultFlag = &fault_flag;
            machine.spawnOn(machine.nodeIdByIndex(0), "fault-daemon",
                            [&ctx](suprenum::ProcessEnv env) {
                                return faultDaemonProcess(env, ctx);
                            });
        }
    }

    const suprenum::Pid master_pid = machine.spawnOn(
        machine.nodeIdByIndex(0), "master",
        [&ctx, &cfg, static_mode](suprenum::ProcessEnv env) {
            if (static_mode)
                return staticMasterProcess(env, ctx);
            if (cfg.faultTolerant)
                return faultTolerantMasterProcess(env, ctx);
            return masterProcess(env, ctx);
        });
    machine.setInitialProcess(master_pid);

    // ----- run --------------------------------------------------------------
    result.completed = machine.runToCompletion(cfg.tickLimit);
    result.applicationTime = machine.applicationExitTime();

    // ----- collect & evaluate -------------------------------------------------
    result.dictionary = rayTracerDictionary();
    result.masterStream = streamOf(0, TokenClass::Master);
    result.dictionary.nameStream(result.masterStream, "MASTER");
    for (unsigned a = 0; a < 6; ++a) {
        result.dictionary.nameStream(
            streamOf(0, TokenClass::Agent, a),
            "AGENT " + std::to_string(a));
    }
    if (injector && injector->active()) {
        // Overrides "AGENT 5" on node 0: the daemon borrows the last
        // stream slot of the master node (events.hh, streamOf).
        result.dictionary.nameStream(streamOf(0, TokenClass::Fault),
                                     "FAULTS");
    }
    for (unsigned s = 0; s < cfg.numServants; ++s) {
        const unsigned stream = streamOf(s + 1, TokenClass::Servant);
        result.servantStreams.push_back(stream);
        result.dictionary.nameStream(stream,
                                     "SERVANT " + std::to_string(s + 1));
        for (unsigned a = 0; a < 6; ++a) {
            result.dictionary.nameStream(
                streamOf(s + 1, TokenClass::Agent, a),
                "AGENT " + std::to_string(a) + " (SERVANT " +
                    std::to_string(s + 1) + ")");
        }
    }

    if (monitored) {
        result.events = zm4->harvest([](const zm4::RawRecord &rec) {
            return logicalStreamOf(rec);
        });
        result.eventsRecorded = zm4->eventsRecorded();
        result.eventsLost = zm4->eventsLost();
        result.protocolErrors = zm4->protocolErrors();
    } else if (logfile_mode) {
        // Collect the per-node log files and merge them the only way
        // a user could: by the (unsynchronized) local time stamps.
        for (unsigned n = 0; n < num_nodes; ++n) {
            for (const auto &rec :
                 machine.nodeByIndex(n).softwareLog()) {
                trace::TraceEvent ev;
                ev.timestamp = rec.localTimestamp;
                ev.token = rec.token;
                ev.param = rec.param;
                const TokenClass cls = tokenClassOf(rec.token);
                const unsigned agent_index =
                    cls == TokenClass::Agent ? rec.param >> 24 : 0;
                ev.stream = streamOf(n, cls, agent_index);
                result.events.push_back(ev);
                ++result.eventsRecorded;
            }
        }
        std::stable_sort(result.events.begin(), result.events.end(),
                         [](const trace::TraceEvent &a,
                            const trace::TraceEvent &b) {
                             return a.timestamp < b.timestamp;
                         });
    }

    // ----- metrics -------------------------------------------------------------
    const auto &truth = ctx.truth;
    result.phaseBegin = truth.firstWorkBegin;
    result.phaseEnd = truth.lastResultReceived;
    if (result.phaseEnd > result.phaseBegin) {
        const double window =
            static_cast<double>(result.phaseEnd - result.phaseBegin);
        double sum = 0.0;
        for (unsigned s = 0; s < cfg.numServants; ++s) {
            sum += static_cast<double>(truth.servantWorkTime[s]) /
                   window;
        }
        result.servantUtilizationActual =
            sum / static_cast<double>(cfg.numServants);
    }
    if (!result.events.empty() &&
        result.phaseEnd > result.phaseBegin) {
        const auto activity = result.activity();
        result.servantUtilizationMeasured = activity.meanUtilization(
            result.servantStreams, "WORK", result.phaseBegin,
            result.phaseEnd);
    }

    result.jobsSent = truth.jobsSent;
    result.resultsReceived = truth.resultsReceived;
    result.writeOps = truth.writeOps;
    result.pixelQueueHighWater = truth.pixelQueueHighWater;
    result.masterCycleMs = truth.masterCycleMs;
    result.rayCostMs = truth.rayCostMs;
    result.missingPixels = image->missingPixels();
    result.duplicatedPixels = image->duplicatedPixels();
    if (master_pool)
        result.masterAgentPoolSize = master_pool->poolSize();
    for (const auto &pool : servant_pools)
        result.servantAgentPoolSizes.push_back(pool->poolSize());

    for (unsigned n = 0; n < num_nodes; ++n) {
        result.messagesDroppedTerminated +=
            machine.nodeByIndex(n).accounting().messagesDroppedTerminated;
    }
    if (injector)
        result.faults = injector->stats();
    result.recovery = truth.recovery;

    if (cfg.instrumentKernel) {
        for (unsigned n = 0; n < num_nodes; ++n) {
            result.kernelEvents +=
                machine.nodeByIndex(n).kernelEventCount();
        }
        // Mailbox scheduling delay on the servant nodes: delivery of
        // a message to the mailbox process until its next dispatch.
        std::map<unsigned, sim::Tick> pending; // node -> delivered at
        for (const auto &e : kernel_trace) {
            if (e.node == 0)
                continue; // master node: different mailbox lwp id
            const std::uint32_t mailbox_lwp =
                ctx.servantMailboxes[e.node - 1]->pid().lwp;
            if (e.token == suprenum::evKernDeliver &&
                e.param == mailbox_lwp) {
                if (!pending.count(e.node))
                    pending[e.node] = e.at;
            } else if (e.token == suprenum::evKernDispatch &&
                       e.param == mailbox_lwp) {
                auto it = pending.find(e.node);
                if (it != pending.end()) {
                    result.mailboxSchedulingDelayMs.push(
                        sim::toMilliseconds(e.at - it->second));
                    pending.erase(it);
                }
            }
        }
    }

    result.image = std::move(image);
    return result;
}

} // namespace par
} // namespace supmon
