/**
 * @file
 * The fault-tolerant master/servant protocol processes.
 *
 * faultTolerantMasterProcess mirrors masterProcess (workers.cc) phase
 * for phase - Distribute Jobs, Send Jobs, Wait for/Receive Results,
 * Write Pixels, with identical cost-model charges - and adds the
 * recovery machinery around it:
 *
 *  - a liveness scan at the top of each cycle: servants whose
 *    heartbeats stopped are declared dead, their credits revoked and
 *    their outstanding jobs queued for resend;
 *  - an ack-deadline scan: jobs whose (exponentially backed-off)
 *    deadline expired are queued for resend;
 *  - resends bypass the window flow control (they replace a job that
 *    already holds a credit) and prefer a different live servant;
 *  - the receive phase polls with a timeout instead of blocking, so
 *    the master keeps making recovery progress when results stop;
 *    heartbeats are drained cheaply, corrupted messages discarded,
 *    duplicate results (jobId no longer outstanding) suppressed.
 *
 * Every recovery action is marked with an evFault* token, so the ZM4
 * trace shows not only that the run survived but *how*.
 */

#include <algorithm>
#include <optional>

#include "partracer/events.hh"
#include "partracer/recovery.hh"
#include "partracer/workers.hh"
#include "sim/logging.hh"

namespace supmon
{
namespace par
{

namespace
{

/**
 * Pick the servant a resend goes to: the least loaded live servant,
 * rotating on ties like the Send Jobs scan, preferring anyone over
 * the current (suspect) holder. Falls back to the current holder if
 * it is the only live servant. @return cfg.numServants if none live.
 */
unsigned
pickResendTarget(const RunConfig &cfg, const LivenessTracker &liveness,
                 const std::vector<unsigned> &credits, unsigned rr_cursor,
                 unsigned current)
{
    unsigned best = cfg.numServants;
    unsigned best_credits = 0;
    bool found = false;
    for (unsigned k = 0; k < cfg.numServants; ++k) {
        const unsigned cand = (rr_cursor + k) % cfg.numServants;
        if (liveness.isDead(cand) || cand == current)
            continue;
        if (!found || credits[cand] > best_credits) {
            found = true;
            best = cand;
            best_credits = credits[cand];
        }
    }
    if (!found && !liveness.isDead(current))
        return current;
    return best;
}

} // namespace

sim::Task
faultTolerantMasterProcess(suprenum::ProcessEnv env, RunContext &ctx)
{
    const RunConfig &cfg = *ctx.cfg;
    hybrid::Instrumentor mon(env, cfg.monitorMode);
    auto &truth = ctx.truth;

    if (cfg.numServants == 0)
        sim::fatal("the ray tracer needs at least one servant");
    if (cfg.pixelQueueLimit < cfg.bundleSize)
        sim::fatal("pixel queue limit (%zu) below the bundle size (%u): "
                   "no job could ever be formed",
                   cfg.pixelQueueLimit, cfg.bundleSize);

    // Initialization download, as in the healthy master.
    co_await env.compute(
        ctx.machine->downloadTime(262144 + ctx.sceneBytes) +
        sim::milliseconds(10));
    co_await mon(evMasterStart, 0);

    const std::size_t total = cfg.totalPixels();
    std::size_t next_to_enqueue = 0;
    std::size_t write_frontier = 0;
    std::deque<std::uint32_t> pixel_queue;
    std::vector<std::uint8_t> completed(total, 0);
    std::vector<unsigned> credits(cfg.numServants, cfg.windowSize);
    std::size_t outstanding_pixels = 0;
    std::size_t unshipped = 0;
    std::uint32_t next_job_id = 1;
    unsigned rr_cursor = 0;
    sim::Tick cycle_start = env.now();

    JobTracker tracker(
        BackoffSchedule{cfg.ackTimeout, cfg.maxJobAttempts});
    LivenessTracker liveness(cfg.numServants, cfg.heartbeatTimeout);
    liveness.reset(env.now());
    std::deque<std::uint32_t> resend_queue;
    bool all_dead = false;

    while (write_frontier < total) {
        // ---------------- Liveness scan ----------------------------
        for (unsigned s : liveness.newlyOverdue(env.now())) {
            liveness.markDead(s);
            ++truth.recovery.servantsDeclaredDead;
            co_await mon(evFaultServantDead, s);
            credits[s] = 0;
            for (std::uint32_t id : tracker.jobsOn(s)) {
                tracker.deferForResend(id);
                resend_queue.push_back(id);
            }
        }
        if (liveness.aliveCount() == 0) {
            sim::warn("fault-tolerant master: every servant is dead, "
                      "abandoning the picture at pixel %zu of %zu",
                      write_frontier, total);
            all_dead = true;
            break;
        }

        // ---------------- Ack-deadline scan ------------------------
        for (std::uint32_t id : tracker.expired(env.now())) {
            ++truth.recovery.timeouts;
            co_await mon(evFaultTimeout, id);
            tracker.deferForResend(id);
            resend_queue.push_back(id);
        }

        // ---------------- Distribute Jobs -------------------------
        co_await mon(evDistributeJobsBegin,
                     static_cast<std::uint32_t>(pixel_queue.size()));
        std::size_t inserted = 0;
        while (next_to_enqueue < total &&
               next_to_enqueue - write_frontier < cfg.pixelQueueLimit) {
            pixel_queue.push_back(
                static_cast<std::uint32_t>(next_to_enqueue++));
            ++inserted;
        }
        truth.pixelQueueHighWater =
            std::max(truth.pixelQueueHighWater, pixel_queue.size());
        co_await env.compute(cfg.adminBase +
                             (inserted > 0 ? inserted - 1 : 0) *
                                 cfg.perPixelQueueInsert);

        // ---------------- Resend expired / orphaned jobs -----------
        // Resends bypass the window: the job still holds the credit
        // consumed by its original send, so sending it again does not
        // deepen any window.
        while (!resend_queue.empty()) {
            const std::uint32_t id = resend_queue.front();
            resend_queue.pop_front();
            const PendingJob *p = tracker.find(id);
            if (!p)
                continue; // result arrived while queued
            const unsigned target = pickResendTarget(
                cfg, liveness, credits, rr_cursor, p->servant);
            if (target >= cfg.numServants)
                break; // nobody left to send to
            JobMsg job = p->job;
            job.servant = static_cast<std::uint16_t>(target);
            ++truth.recovery.retries;
            co_await mon(evFaultRetry, id);
            if (target != p->servant) {
                ++truth.recovery.reassigned;
                co_await mon(evFaultJobReassigned, id);
            }
            co_await env.compute(cfg.perJobSendPrep);
            if (cfg.instrumentJobSend)
                co_await mon(evJobSend, id);
            if (cfg.forwardAgents()) {
                ctx.masterPool->submit(
                    ctx.servantMailboxes[target]->pid(),
                    job.wireBytes(), tagJob, job);
                co_await env.yield();
            } else {
                co_await env.send(ctx.servantMailboxes[target]->pid(),
                                  job.wireBytes(), tagJob, job);
            }
            tracker.reassign(id, target, env.now());
        }

        // ---------------- Send Jobs -------------------------------
        bool can_send = !pixel_queue.empty();
        if (can_send) {
            bool any_credit = false;
            for (unsigned s = 0; s < cfg.numServants; ++s)
                any_credit =
                    any_credit || (credits[s] > 0 && !liveness.isDead(s));
            can_send = any_credit;
        }
        if (can_send) {
            co_await mon(evSendJobsBegin, next_job_id);
            unsigned sends_left = 2;
            while (!pixel_queue.empty() && sends_left > 0) {
                unsigned s = cfg.numServants;
                unsigned best_credits = 0;
                for (unsigned k = 0; k < cfg.numServants; ++k) {
                    const unsigned cand =
                        (rr_cursor + k) % cfg.numServants;
                    if (liveness.isDead(cand))
                        continue;
                    if (credits[cand] > best_credits) {
                        best_credits = credits[cand];
                        s = cand;
                    }
                }
                if (s == cfg.numServants)
                    break; // no credits anywhere
                JobMsg job;
                job.jobId = next_job_id++;
                job.firstPixel = pixel_queue.front();
                job.count = static_cast<std::uint32_t>(
                    std::min<std::size_t>(cfg.bundleSize,
                                          pixel_queue.size()));
                job.servant = static_cast<std::uint16_t>(s);
                for (unsigned i = 0; i < job.count; ++i)
                    pixel_queue.pop_front();
                co_await env.compute(cfg.perJobSendPrep);
                if (cfg.instrumentJobSend)
                    co_await mon(evJobSend, job.jobId);
                if (cfg.forwardAgents()) {
                    ctx.masterPool->submit(
                        ctx.servantMailboxes[s]->pid(),
                        job.wireBytes(), tagJob, job);
                    co_await env.yield();
                } else {
                    co_await env.send(ctx.servantMailboxes[s]->pid(),
                                      job.wireBytes(), tagJob, job);
                }
                tracker.track(job, s, env.now());
                --credits[s];
                outstanding_pixels += job.count;
                ++truth.jobsSent;
                rr_cursor = (s + 1) % cfg.numServants;
                --sends_left;
            }
            co_await mon(evSendJobsEnd, next_job_id);
        }

        // ---------------- Wait for / Receive Results ---------------
        if (outstanding_pixels > 0) {
            co_await mon(evWaitForResultsBegin, 0);
            // Heartbeats and discards are drained within the cycle
            // (they are cheap); one *result* is processed per cycle,
            // exactly like the healthy master. The drain bound keeps
            // a heartbeat flood from starving the send phase.
            bool got_result = false;
            unsigned drained = 0;
            while (!got_result && drained < 32) {
                std::optional<suprenum::Message> maybe =
                    co_await ctx.masterMailbox->readFor(
                        env, cfg.recoveryPollInterval);
                if (!maybe)
                    break; // poll timeout: go scan deadlines
                ++drained;
                suprenum::Message msg = std::move(*maybe);
                if (msg.corrupted) {
                    // A garbled message fails its checksum; pay the
                    // inspection cost and drop it on the floor.
                    ++truth.recovery.corruptDiscarded;
                    co_await mon(evFaultCorruptDiscarded,
                                 static_cast<std::uint32_t>(msg.tag));
                    co_await env.compute(cfg.resultProcessBase);
                    continue;
                }
                if (msg.tag == tagHeartbeat) {
                    const auto &hb =
                        suprenum::payloadAs<HeartbeatMsg>(msg);
                    ++truth.recovery.heartbeatsReceived;
                    liveness.beat(hb.servant, env.now());
                    co_await env.compute(cfg.heartbeatProcessCost);
                    continue;
                }
                const auto &res = suprenum::payloadAs<ResultMsg>(msg);
                // Any result is proof of life: a busy servant's beacon
                // LWP is starved for the whole (non-preemptive) bundle
                // compute, so its results carry the liveness signal
                // while the heartbeats cover the idle stretches.
                liveness.beat(res.servant, env.now());
                const std::optional<PendingJob> pend =
                    tracker.accept(res.jobId);
                if (!pend) {
                    // Job already completed by another servant (or a
                    // resend raced its own first copy): suppress.
                    ++truth.recovery.duplicatesSuppressed;
                    co_await mon(evFaultDuplicateResult, res.jobId);
                    co_await env.compute(cfg.resultProcessBase);
                    continue;
                }
                co_await mon(evReceiveResultsBegin, res.jobId);
                const std::size_t extra_rays =
                    res.colors.empty() ? 0 : res.colors.size() - 1;
                co_await env.compute(cfg.resultProcessBase +
                                     extra_rays *
                                         cfg.perRayResultProcess);
                for (std::size_t i = 0; i < res.colors.size(); ++i) {
                    const std::size_t px =
                        res.firstPixel + i * res.stride;
                    ctx.image->setLinear(px, res.colors[i]);
                    completed[px] = 1;
                }
                if (res.servant >= credits.size())
                    sim::panic("result from unknown servant %u",
                               res.servant);
                if (!liveness.isDead(res.servant))
                    ++credits[res.servant];
                outstanding_pixels -= res.colors.size();
                ++truth.resultsReceived;
                truth.lastResultReceived = env.now();
                got_result = true;
            }
        }

        // ---------------- Write Pixels -----------------------------
        std::size_t writable = 0;
        while (write_frontier + writable < total &&
               completed[write_frontier + writable])
            ++writable;
        const bool final_stretch =
            writable > 0 && write_frontier + writable == total;
        if (writable >= std::max<std::size_t>(1, cfg.writeBatchMin) ||
            final_stretch) {
            co_await mon(evWritePixelsBegin,
                         static_cast<std::uint32_t>(writable));
            co_await env.compute(cfg.writePixelsBase +
                                 (writable - 1) * cfg.perPixelWrite);
            write_frontier += writable;
            truth.pixelsWritten += writable;
            unshipped += writable;
            if (unshipped >= cfg.diskShipThreshold ||
                write_frontier == total) {
                suprenum::DiskWriteRequest req;
                req.bytes = static_cast<std::uint32_t>(unshipped) * 6;
                co_await env.send(
                    ctx.machine->diskService(env.pid().node.cluster),
                    req.bytes, suprenum::tagDiskWrite, req);
                unshipped = 0;
                ++truth.writeOps;
            }
            co_await mon(evWritePixelsEnd,
                         static_cast<std::uint32_t>(writable));
        }

        const sim::Tick now = env.now();
        truth.masterCycleMs.push(sim::toMilliseconds(now - cycle_start));
        cycle_start = now;
    }

    // Wind down: stop the heartbeat beacons, then ask every servant
    // to terminate itself (dead ones simply never read their quit).
    ctx.stopHeartbeats = true;
    for (unsigned s = 0; s < cfg.numServants; ++s) {
        JobMsg quit;
        quit.quit = true;
        quit.servant = static_cast<std::uint16_t>(s);
        co_await env.send(ctx.servantMailboxes[s]->pid(),
                          quit.wireBytes(), tagJob, quit);
    }

    if (!all_dead) {
        co_await mon(evMasterDone, 0);
        truth.masterDoneAt = env.now();
    }
}

sim::Task
heartbeatProcess(suprenum::ProcessEnv env, RunContext &ctx,
                 unsigned index)
{
    const RunConfig &cfg = *ctx.cfg;
    std::uint32_t sequence = 0;
    for (;;) {
        co_await env.sleep(cfg.heartbeatInterval);
        if (ctx.stopHeartbeats)
            break;
        // The beacon speaks for its servant: once the servant process
        // is gone (killed or terminated), the beacon falls silent and
        // the master's liveness tracker does the rest.
        const suprenum::Lwp *servant =
            env.kernel().find(ctx.servantPids[index].lwp);
        if (!servant ||
            servant->state == suprenum::LwpState::Terminated)
            break;
        HeartbeatMsg hb;
        hb.servant = static_cast<std::uint16_t>(index);
        hb.sequence = ++sequence;
        co_await env.send(ctx.masterMailbox->pid(), hb.wireBytes(),
                          tagHeartbeat, hb);
    }
}

sim::Task
faultDaemonProcess(suprenum::ProcessEnv env, RunContext &ctx)
{
    const RunConfig &cfg = *ctx.cfg;
    hybrid::Instrumentor mon(env, cfg.monitorMode);
    for (;;) {
        while (ctx.faultNotices && !ctx.faultNotices->empty()) {
            const faults::FaultNotice n = ctx.faultNotices->front();
            ctx.faultNotices->pop_front();
            std::uint16_t token = 0;
            switch (n.kind) {
              case faults::FaultKind::KillLwp:
                token = evInjectKill;
                break;
              case faults::FaultKind::CrashNode:
                token = evInjectCrash;
                break;
              case faults::FaultKind::RestartNode:
                token = evInjectRestart;
                break;
              case faults::FaultKind::DropMessages:
                token = evInjectDrop;
                break;
              case faults::FaultKind::CorruptMessages:
                token = evInjectCorrupt;
                break;
              case faults::FaultKind::DelayMessages:
                token = evInjectDelay;
                break;
              case faults::FaultKind::StallNode:
                token = evInjectStall;
                break;
            }
            co_await mon(token, n.param);
        }
        co_await env.wait(*ctx.faultFlag);
    }
}

} // namespace par
} // namespace supmon
