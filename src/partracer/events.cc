#include "events.hh"

#include "hybrid/event_code.hh"
#include "suprenum/kernel_events.hh"

namespace supmon
{
namespace par
{

unsigned
logicalStreamOf(const zm4::RawRecord &rec,
                unsigned channels_per_recorder)
{
    const unsigned node =
        static_cast<unsigned>(rec.recorderId) * channels_per_recorder +
        rec.channel;
    const auto data = hybrid::unpack48(rec.data48);
    const TokenClass cls = tokenClassOf(data.token);
    const unsigned agent_index =
        cls == TokenClass::Agent ? data.param >> 24 : 0;
    return streamOf(node, cls, agent_index);
}

trace::EventDictionary
rayTracerDictionary()
{
    trace::EventDictionary dict;
    // Master rows exactly as in Figures 7 and 9.
    dict.defineBegin(evDistributeJobsBegin, "Distribute Jobs Begin",
                     "DISTRIBUTE JOBS");
    dict.defineBegin(evSendJobsBegin, "Send Jobs Begin", "SEND JOBS");
    dict.definePoint(evSendJobsEnd, "Send Jobs End");
    dict.defineBegin(evWaitForResultsBegin, "Wait for Results Begin",
                     "WAIT FOR RESULTS");
    dict.defineBegin(evReceiveResultsBegin, "Receive Results Begin",
                     "RECEIVE RESULTS");
    dict.defineBegin(evWritePixelsBegin, "Write Pixels Begin",
                     "WRITE PIXELS");
    dict.definePoint(evWritePixelsEnd, "Write Pixels End");
    dict.definePoint(evJobSend, "Job Send");
    dict.definePoint(evMasterStart, "Master Start");
    dict.definePoint(evMasterDone, "Master Done");

    // Master recovery actions (fault-tolerant protocol).
    dict.definePoint(evFaultTimeout, "Fault Timeout");
    dict.definePoint(evFaultRetry, "Fault Retry");
    dict.definePoint(evFaultJobReassigned, "Fault Job Reassigned");
    dict.definePoint(evFaultServantDead, "Fault Servant Dead");
    dict.definePoint(evFaultDuplicateResult, "Fault Duplicate Result");
    dict.definePoint(evFaultCorruptDiscarded,
                     "Fault Corrupt Discarded");

    // Servant rows.
    dict.defineBegin(evWaitForJobBegin, "Wait for Job Begin",
                     "WAIT FOR JOB");
    dict.defineBegin(evWorkBegin, "Work Begin", "WORK");
    dict.defineBegin(evSendResultsBegin, "Send Results Begin",
                     "SEND RESULTS");
    dict.definePoint(evServantStart, "Servant Start");
    dict.definePoint(evServantDone, "Servant Done");
    dict.definePoint(evServantCorruptJob, "Servant Corrupt Job");

    // Agent rows (Figure 9, bottom).
    dict.defineBegin(evAgentWakeUp, "Agent Wake Up", "WAKE UP");
    dict.defineBegin(evAgentForward, "Agent Forward",
                     "FORWARD MESSAGE");
    dict.defineBegin(evAgentFreed, "Agent Freed", "FREED");
    dict.defineBegin(evAgentSleep, "Agent Sleep", "SLEEP");

    // Kernel probe events (OS instrumentation side channel). Defined
    // here too so the one dictionary names every token class a run
    // can record and the kernel trace renders symbolically.
    dict.definePoint(suprenum::evKernDispatch, "Kernel Dispatch");
    dict.definePoint(suprenum::evKernBlock, "Kernel Block");
    dict.definePoint(suprenum::evKernReady, "Kernel Ready");
    dict.definePoint(suprenum::evKernDeliver, "Kernel Deliver");
    dict.definePoint(suprenum::evKernSend, "Kernel Send");
    dict.definePoint(suprenum::evKernYield, "Kernel Yield");
    dict.definePoint(suprenum::evKernExit, "Kernel Exit");
    dict.definePoint(suprenum::evKernDrop, "Kernel Drop");

    // Injected faults (fault daemon, Figure-style recovery timeline).
    dict.definePoint(evInjectKill, "Inject Kill");
    dict.definePoint(evInjectCrash, "Inject Crash");
    dict.definePoint(evInjectRestart, "Inject Restart");
    dict.definePoint(evInjectDrop, "Inject Drop");
    dict.definePoint(evInjectCorrupt, "Inject Corrupt");
    dict.definePoint(evInjectDelay, "Inject Delay");
    dict.definePoint(evInjectStall, "Inject Stall");
    return dict;
}

void
nameRayTracerStreams(trace::EventDictionary &dict, unsigned nodes)
{
    for (unsigned node = 0; node < nodes; ++node) {
        for (unsigned sub = 0; sub < streamsPerNode; ++sub) {
            const unsigned stream = node * streamsPerNode + sub;
            if (sub == 0) {
                dict.nameStream(stream,
                                node == 0 ? "MASTER"
                                          : "NODE " +
                                                std::to_string(node));
            } else if (sub == 1) {
                dict.nameStream(stream,
                                "SERVANT " + std::to_string(node));
            } else if (sub == 7 && node == 0) {
                // Slot shared with overflow agents; on the master
                // node it carries the fault daemon's timeline.
                dict.nameStream(stream, "FAULTS");
            } else {
                dict.nameStream(stream,
                                "AGENT " + std::to_string(sub - 2) +
                                    " (node " + std::to_string(node) +
                                    ")");
            }
        }
    }
}

} // namespace par
} // namespace supmon
