/**
 * @file
 * The pool of communication agents (paper, section 4.3, version 2).
 *
 * "For the communication from the master to the servants we
 * introduced a pool of light-weight processes which we call
 * communication agents. Their task is to forward a message from the
 * master to one of the servants. The agents are running on the same
 * processor as the master. Whenever the master wishes to send a
 * message to a servant he indicates this fact to an agent, who is
 * currently not engaged in some other communication, by setting a
 * shared variable. [...] If no free agent is available a new agent is
 * created and added to the pool. After the indication the master
 * relinquishes the processor and all agents will be scheduled."
 *
 * The indication is modelled as a team-shared work queue plus a wake
 * signal: a sleeping (not engaged) agent is woken to pick the message
 * up; if none is sleeping, a new agent is created. An agent that
 * wakes up and finds no message (because a just-freed agent drained
 * the queue first) goes back to sleep immediately - the behaviour
 * visible in the Figure 9 Gantt chart.
 *
 * Version 3 reuses the same pool class on each servant node for the
 * reverse direction.
 *
 * The number of agents that get created is *emergent*: the pool grows
 * only when a message arrives while every existing agent is engaged.
 * The paper reports that the pool stayed quite small (5 agents for
 * the moderate scene on 16 processors); tests assert the same here.
 */

#ifndef PARTRACER_AGENT_HH
#define PARTRACER_AGENT_HH

#include <any>
#include <deque>
#include <string>
#include <vector>

#include "hybrid/instrument.hh"
#include "suprenum/kernel.hh"

namespace supmon
{
namespace par
{

class AgentPool
{
  public:
    /**
     * @param kernel node the pool's owner runs on (agents share it).
     * @param name_prefix process-name prefix for spawned agents.
     * @param mode monitoring mode of the agents' instrumentation.
     * @param team team of the owner (shared variables!).
     */
    AgentPool(suprenum::NodeKernel &kernel, std::string name_prefix,
              hybrid::MonitorMode mode, unsigned team = 0)
        : kern(kernel), prefix(std::move(name_prefix)), monMode(mode),
          ownerTeam(team), wakeFlag(kernel)
    {
    }

    AgentPool(const AgentPool &) = delete;
    AgentPool &operator=(const AgentPool &) = delete;

    /**
     * Hand a message to the pool (creating an agent if none is free)
     * and wake a free agent. The caller must be the running process
     * on this node and should relinquish the processor afterwards
     * (co_await env.yield()) so the agents get scheduled.
     */
    void submit(suprenum::Pid dst, std::uint32_t bytes, int tag,
                std::any payload);

    /** Number of agents ever created ("remains quite small"). */
    std::size_t
    poolSize() const
    {
        return agents;
    }

    /** Messages waiting for pickup. */
    std::size_t
    pendingCount() const
    {
        return pending.size();
    }

    /** Total messages forwarded by the pool. */
    std::uint64_t
    forwardedCount() const
    {
        return forwarded;
    }

    /** Spurious wake-ups (agent woke up, found no message). */
    std::uint64_t
    spuriousWakeups() const
    {
        return spurious;
    }

    /** Creation time of each agent (diagnostic for pool growth). */
    const std::vector<sim::Tick> &
    creationTimes() const
    {
        return created;
    }

  private:
    struct Work
    {
        suprenum::Pid dst = suprenum::nobody;
        std::uint32_t bytes = 0;
        int tag = 0;
        std::any payload;
    };

    /** Body of one communication agent. */
    static sim::Task agentProcess(suprenum::ProcessEnv env,
                                  AgentPool *pool, unsigned index);

    suprenum::NodeKernel &kern;
    std::string prefix;
    hybrid::MonitorMode monMode;
    unsigned ownerTeam;
    suprenum::EventFlag wakeFlag;
    std::deque<Work> pending;
    std::vector<sim::Tick> created;
    std::size_t agents = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t spurious = 0;
};

} // namespace par
} // namespace supmon

#endif // PARTRACER_AGENT_HH
