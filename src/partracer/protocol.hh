/**
 * @file
 * The master/servant wire protocol: job and result messages, message
 * tags and wire sizes.
 *
 * Jobs are bundles of one or more rays (consecutive pixels in scan
 * order); results return the computed colour values. The maximum
 * number of outstanding jobs per servant is limited by the window
 * flow control scheme: the master holds a fixed number of credits per
 * servant and gets one credit back with each result.
 */

#ifndef PARTRACER_PROTOCOL_HH
#define PARTRACER_PROTOCOL_HH

#include <cstdint>
#include <vector>

#include "raytracer/vec3.hh"

namespace supmon
{
namespace par
{

/** @{ message tags */
constexpr int tagJob = 1;
constexpr int tagResult = 2;
constexpr int tagHeartbeat = 3;
/** @} */

struct JobMsg
{
    std::uint32_t jobId = 0;
    /** First pixel (scan order linear index). */
    std::uint32_t firstPixel = 0;
    /** Number of pixels in the job (the bundle). */
    std::uint32_t count = 0;
    /** Distance between consecutive pixels of the job: 1 for the
     *  dynamic bundles, numServants for static interleaved
     *  partitioning (paper, section 4.1). */
    std::uint32_t stride = 1;
    /** Servant index the job is addressed to. */
    std::uint16_t servant = 0;
    /** Termination request ("a process can only terminate itself"). */
    bool quit = false;

    /** Wire size: header + pixel descriptor. */
    std::uint32_t
    wireBytes() const
    {
        return 24;
    }
};

/**
 * Periodic liveness beacon of the fault-tolerant protocol. A servant
 * node's heartbeat process sends one every heartbeatInterval; the
 * master declares a servant dead once its beacons stop for longer
 * than heartbeatTimeout and reassigns its outstanding jobs.
 */
struct HeartbeatMsg
{
    std::uint16_t servant = 0;
    /** Sequence number (diagnostics; not used by the master). */
    std::uint32_t sequence = 0;

    /** Wire size: tiny fixed-size control message. */
    std::uint32_t
    wireBytes() const
    {
        return 8;
    }
};

struct ResultMsg
{
    std::uint32_t jobId = 0;
    std::uint32_t firstPixel = 0;
    std::uint32_t stride = 1;
    std::uint16_t servant = 0;
    std::vector<rt::Vec3> colors;

    /** Wire size: header + 6 bytes per pixel (16-bit RGB). */
    std::uint32_t
    wireBytes() const
    {
        return 16 + static_cast<std::uint32_t>(colors.size()) * 6;
    }
};

} // namespace par
} // namespace supmon

#endif // PARTRACER_PROTOCOL_HH
