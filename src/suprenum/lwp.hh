/**
 * @file
 * Light-weight process (LWP) control block.
 *
 * SUPRENUM user applications consist of processes that are scheduled
 * per node by a plain round-robin scheduler *without* time slicing:
 * a scheduled process runs until it blocks or relinquishes the
 * processor deliberately (paper, section 4.3). This non-preemptive
 * behaviour is what makes the "asynchronous" mailbox mechanism behave
 * synchronously, the paper's central observation.
 */

#ifndef SUPRENUM_LWP_HH
#define SUPRENUM_LWP_HH

#include <deque>
#include <functional>
#include <string>

#include "sim/task.hh"
#include "sim/types.hh"
#include "suprenum/message.hh"

namespace supmon
{
namespace suprenum
{

enum class LwpState
{
    Created,
    Ready,
    Running,
    Blocked,
    Terminated,
};

enum class BlockReason
{
    None,
    /** Waiting in receive() for a matching message. */
    Receive,
    /** Waiting for the rendezvous acknowledgement of a send(). */
    Rendezvous,
    /** Waiting on an EventFlag (team-shared condition). */
    Flag,
    /** Timed sleep. */
    Sleep,
};

/** Human-readable names, used by state dumps and deadlock reports. */
const char *lwpStateName(LwpState s);
const char *blockReasonName(BlockReason r);

/**
 * Per-process accounting, the kind of summary information SUPRENUM's
 * own accounting could provide. The paper argues this is *not enough*
 * to understand behaviour - we keep it around as the comparator.
 */
struct LwpAccounting
{
    sim::Tick running = 0;
    sim::Tick ready = 0;
    sim::Tick blocked = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t messagesSent = 0;
    std::uint64_t messagesReceived = 0;
};

struct Lwp
{
    Pid pid;
    std::string name;
    /** Team id; processes of one team share memory on their node. */
    unsigned team = 0;

    /**
     * The callable that produced the coroutine. Kept alive for the
     * process's lifetime so that *coroutine lambdas* (whose captures
     * live in the closure object, not in the coroutine frame) are
     * safe to pass to spawn().
     */
    std::function<sim::Task()> factory;

    sim::Task task;

    LwpState state = LwpState::Created;
    BlockReason blockReason = BlockReason::None;
    /** When the current state was entered (for accounting). */
    sim::Tick stateSince = 0;

    /** Delivered but not yet accepted messages. */
    std::deque<Message> inbox;
    /** Filter in effect while blocked in receive(). */
    MessageFilter waitFilter;

    LwpAccounting accounting;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_LWP_HH
