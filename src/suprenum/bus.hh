/**
 * @file
 * Interconnect models: the dual cluster bus and the SUPRENUM
 * (inter-cluster) token-ring bus.
 *
 * Published characteristics (paper, section 2.1):
 *  - cluster bus: two independent parallel buses of 160 MByte/s each
 *    (320 MByte/s aggregate) connecting the up to 16 processing nodes
 *    of one cluster plus its special nodes;
 *  - SUPRENUM bus: bit-serial token-ring buses arranging the clusters
 *    in a torus, 25 MByte/s each, duplicated for bandwidth and fault
 *    tolerance.
 *
 * Both are modelled as busy-until resources: a transfer is granted
 * the earliest-free sub-bus, pays an arbitration overhead (cluster
 * bus) or the token rotation latency (ring), and occupies the sub-bus
 * for size/bandwidth.
 */

#ifndef SUPRENUM_BUS_HH
#define SUPRENUM_BUS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hh"
#include "suprenum/config.hh"

namespace supmon
{
namespace suprenum
{

/** Description of one completed bus transfer (for the diagnosis
 *  node and for tests). */
struct BusTransfer
{
    NodeId src;
    NodeId dst;
    std::uint32_t bytes = 0;
    sim::Tick start = 0;
    sim::Tick end = 0;
    bool ack = false;
};

/** Result of a bus acquisition. */
struct BusGrant
{
    sim::Tick start = 0;
    sim::Tick end = 0;
    unsigned subBus = 0;
};

/**
 * The dual cluster bus. Transfers are observed by the cluster's
 * diagnosis node through the observer hook.
 */
class ClusterBus
{
  public:
    using Observer = std::function<void(const BusTransfer &)>;

    ClusterBus(std::uint64_t bytes_per_sec, unsigned bus_count,
               sim::Tick arbitration)
        : rate(bytes_per_sec), arb(arbitration),
          busyUntil(bus_count ? bus_count : 1, 0)
    {
    }

    /**
     * Acquire a sub-bus for a transfer of @p bytes no earlier than
     * @p earliest.
     */
    BusGrant
    acquire(sim::Tick earliest, std::uint64_t bytes)
    {
        unsigned best = 0;
        for (unsigned i = 1; i < busyUntil.size(); ++i) {
            if (busyUntil[i] < busyUntil[best])
                best = i;
        }
        BusGrant g;
        g.subBus = best;
        g.start = std::max(earliest, busyUntil[best]) + arb;
        g.end = g.start + sim::transferTime(bytes, rate);
        busyUntil[best] = g.end;
        busyTotal += g.end - g.start;
        ++transfers;
        return g;
    }

    /** Record a completed transfer with the diagnosis observer. */
    void
    notify(const BusTransfer &t)
    {
        if (observer)
            observer(t);
    }

    void
    attachObserver(Observer obs)
    {
        observer = std::move(obs);
    }

    sim::Tick
    totalBusyTime() const
    {
        return busyTotal;
    }

    std::uint64_t
    transferCount() const
    {
        return transfers;
    }

  private:
    std::uint64_t rate;
    sim::Tick arb;
    std::vector<sim::Tick> busyUntil;
    Observer observer;
    sim::Tick busyTotal = 0;
    std::uint64_t transfers = 0;
};

/**
 * One (duplicated) token ring of the SUPRENUM bus. The token must
 * travel @p hops cluster positions before the transfer can start.
 */
class RingBus
{
  public:
    RingBus(std::uint64_t bytes_per_sec, unsigned ring_count,
            sim::Tick token_hop_latency)
        : rate(bytes_per_sec), hopLatency(token_hop_latency),
          busyUntil(ring_count ? ring_count : 1, 0)
    {
    }

    BusGrant
    acquire(sim::Tick earliest, std::uint64_t bytes, unsigned hops)
    {
        unsigned best = 0;
        for (unsigned i = 1; i < busyUntil.size(); ++i) {
            if (busyUntil[i] < busyUntil[best])
                best = i;
        }
        BusGrant g;
        g.subBus = best;
        const sim::Tick token_wait =
            hopLatency * static_cast<sim::Tick>(hops);
        g.start = std::max(earliest + token_wait, busyUntil[best]);
        g.end = g.start + sim::transferTime(bytes, rate);
        busyUntil[best] = g.end;
        ++transfers;
        return g;
    }

    std::uint64_t
    transferCount() const
    {
        return transfers;
    }

  private:
    std::uint64_t rate;
    sim::Tick hopLatency;
    std::vector<sim::Tick> busyUntil;
    std::uint64_t transfers = 0;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_BUS_HH
