/**
 * @file
 * The seven segment display on a SUPRENUM processing node's front
 * cover.
 *
 * The display is driven from a gate array on the node board and can
 * show 16 different patterns; under normal operating conditions it
 * displays the internal state of the communication firmware. The
 * hybrid monitoring interface (paper, section 3.2) re-purposes it as a
 * 4-bit-wide measurement output port: the ZM4 probes are plugged into
 * the display socket.
 *
 * We model the electrical interface faithfully: a write stores a
 * 4-bit pattern index, the gate array drives the corresponding
 * 7-segment glyph (segment bitmask), and an attached probe observes
 * every glyph change with its time stamp.
 */

#ifndef SUPRENUM_SEVEN_SEGMENT_HH
#define SUPRENUM_SEVEN_SEGMENT_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace supmon
{
namespace suprenum
{

/**
 * Glyph (segment bitmask, bits 0..6 = segments a..g) shown for each of
 * the 16 pattern indices: the standard hexadecimal 7-segment font.
 */
constexpr std::uint8_t sevenSegmentFont[16] = {
    0x3f, // 0
    0x06, // 1
    0x5b, // 2
    0x4f, // 3
    0x66, // 4
    0x6d, // 5
    0x7d, // 6
    0x07, // 7
    0x7f, // 8
    0x6f, // 9
    0x77, // A
    0x7c, // b
    0x39, // C
    0x5e, // d
    0x79, // E
    0x71, // F
};

/** Map a glyph bitmask back to its pattern index; 0xff if unknown. */
std::uint8_t sevenSegmentPatternOf(std::uint8_t glyph);

class SevenSegmentDisplay
{
  public:
    /** Callback invoked for every glyph driven onto the display. */
    using Observer =
        std::function<void(std::uint8_t glyph, sim::Tick when)>;

    /**
     * Write a 4-bit pattern index to the display.
     * @param pattern index 0..15 into the glyph font.
     * @param when current simulated time.
     * @param firmware true if this write comes from the communication
     *        firmware rather than from the hybrid_mon routine.
     *        Firmware writes are suppressed while the display is
     *        reserved for monitoring.
     */
    void write(std::uint8_t pattern, sim::Tick when,
               bool firmware = false);

    /** Currently displayed glyph bitmask. */
    std::uint8_t
    glyph() const
    {
        return curGlyph;
    }

    /** Attach the ZM4 probe. */
    void
    attachObserver(Observer obs)
    {
        observer = std::move(obs);
    }

    /**
     * Reserve the display for monitoring: firmware writes are dropped,
     * because the triggerword pattern must stay reserved and (T, m_i)
     * pairs must be atomic (paper, section 3.2).
     */
    void
    reserveForMonitoring(bool reserved)
    {
        monitoringReserved = reserved;
    }

    bool
    reservedForMonitoring() const
    {
        return monitoringReserved;
    }

    /** Number of firmware writes suppressed by the reservation. */
    std::uint64_t
    suppressedFirmwareWrites() const
    {
        return suppressed;
    }

  private:
    Observer observer;
    std::uint8_t curGlyph = 0;
    bool monitoringReserved = false;
    std::uint64_t suppressed = 0;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_SEVEN_SEGMENT_HH
