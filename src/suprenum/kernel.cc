#include "kernel.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"
#include "suprenum/machine.hh"

namespace supmon
{
namespace suprenum
{

const char *
lwpStateName(LwpState s)
{
    switch (s) {
      case LwpState::Created:
        return "created";
      case LwpState::Ready:
        return "ready";
      case LwpState::Running:
        return "running";
      case LwpState::Blocked:
        return "blocked";
      case LwpState::Terminated:
        return "terminated";
    }
    return "?";
}

const char *
blockReasonName(BlockReason r)
{
    switch (r) {
      case BlockReason::None:
        return "none";
      case BlockReason::Receive:
        return "receive";
      case BlockReason::Rendezvous:
        return "send-rendezvous";
      case BlockReason::Flag:
        return "flag";
      case BlockReason::Sleep:
        return "sleep";
    }
    return "?";
}

void
EventFlag::signalAll()
{
    while (!waiters.empty()) {
        Lwp *l = waiters.front();
        waiters.pop_front();
        // A fault may have killed a process while it waited.
        if (l->state != LwpState::Terminated)
            kern.makeReady(l);
    }
}

void
EventFlag::signalOne()
{
    while (!waiters.empty()) {
        Lwp *l = waiters.front();
        waiters.pop_front();
        if (l->state != LwpState::Terminated) {
            kern.makeReady(l);
            return;
        }
    }
}

NodeKernel::NodeKernel(Machine &machine, NodeId node_id)
    : mach(machine), id(node_id),
      serialDev(machine.params().terminalBitsPerSec)
{
}

sim::Simulation &
NodeKernel::simulation()
{
    return mach.sim();
}

const MachineParams &
NodeKernel::params() const
{
    return mach.params();
}

sim::Tick
ProcessEnv::now() const
{
    return kern->simulation().now();
}

Pid
NodeKernel::spawn(const std::string &name, ProcessFn fn, unsigned team)
{
    auto lwp = std::make_unique<Lwp>();
    Lwp *l = lwp.get();
    l->pid = Pid{id, static_cast<std::uint32_t>(lwps.size())};
    l->name = name;
    l->team = team;
    l->stateSince = simulation().now();
    lwps.push_back(std::move(lwp));

    // Keep the callable alive in the control block: coroutine lambdas
    // keep their captures in the closure object, so destroying it
    // while the coroutine is suspended would dangle.
    ProcessEnv env(*this, *l);
    l->factory = [body = std::move(fn), env]() mutable {
        return body(env);
    };
    l->task = l->factory();
    if (!l->task.valid())
        sim::panic("spawn('%s'): process body returned an invalid task",
                   name.c_str());
    l->task.promise().onDone = [this, l] { onTerminated(l); };
    makeReady(l);
    return l->pid;
}

Lwp *
NodeKernel::find(std::uint32_t lwp_id)
{
    if (lwp_id >= lwps.size())
        return nullptr;
    return lwps[lwp_id].get();
}

const Lwp *
NodeKernel::find(std::uint32_t lwp_id) const
{
    if (lwp_id >= lwps.size())
        return nullptr;
    return lwps[lwp_id].get();
}

bool
NodeKernel::allocateMemory(std::uint64_t bytes, const char *what)
{
    memUsed += bytes;
    if (memUsed > params().nodeMemoryBytes && !memWarned) {
        memWarned = true;
        sim::warn("node (%u,%u): memory overcommitted by '%s' "
                  "(%llu of %llu bytes)",
                  id.cluster, id.node, what,
                  static_cast<unsigned long long>(memUsed),
                  static_cast<unsigned long long>(
                      params().nodeMemoryBytes));
        return false;
    }
    return memUsed <= params().nodeMemoryBytes;
}

void
NodeKernel::assertRunning(const Lwp &lwp, const char *op) const
{
    if (running != &lwp)
        sim::panic("kernel op '%s' issued by process '%s' which is not "
                   "running (state %s)",
                   op, lwp.name.c_str(), lwpStateName(lwp.state));
}

void
NodeKernel::accountState(Lwp *lwp, LwpState new_state)
{
    const sim::Tick now = simulation().now();
    const sim::Tick dt = now - lwp->stateSince;
    switch (lwp->state) {
      case LwpState::Running:
        lwp->accounting.running += dt;
        acct.cpuBusy += dt;
        break;
      case LwpState::Ready:
        lwp->accounting.ready += dt;
        break;
      case LwpState::Blocked:
        lwp->accounting.blocked += dt;
        break;
      default:
        break;
    }
    lwp->state = new_state;
    lwp->stateSince = now;
}

sim::Tick
NodeKernel::probeKernelEvent(std::uint16_t token, std::uint32_t param)
{
    if (!kernProbe)
        return 0;
    ++kernEvents;
    kernProbe(token, param);
    return kernProbeCost;
}

void
NodeKernel::makeReady(Lwp *lwp)
{
    if (lwp->state == LwpState::Ready || lwp->state == LwpState::Running)
        sim::panic("makeReady('%s'): process already %s",
                   lwp->name.c_str(), lwpStateName(lwp->state));
    if (lwp->state == LwpState::Terminated)
        sim::panic("makeReady('%s'): process already terminated",
                   lwp->name.c_str());
    accountState(lwp, LwpState::Ready);
    lwp->blockReason = BlockReason::None;
    readyQueue.push_back(lwp);
    pendingProbeCost += probeKernelEvent(evKernReady, lwp->pid.lwp);
    maybeScheduleDispatch();
}

void
NodeKernel::maybeScheduleDispatch()
{
    if (running || dispatchPending || readyQueue.empty())
        return;
    dispatchPending = true;
    simulation().scheduleAfter(params().contextSwitchCost,
                               [this] { dispatch(); });
}

void
NodeKernel::dispatch()
{
    if (simulation().now() < freezeUntil) {
        // Node stalled by fault injection: retry once it thaws
        // (dispatchPending stays set so nobody double-schedules).
        simulation().scheduleAt(freezeUntil, [this] { dispatch(); });
        return;
    }
    dispatchPending = false;
    if (running)
        sim::panic("dispatch with a running process on node (%u,%u)",
                   id.cluster, id.node);
    if (readyQueue.empty())
        return;
    Lwp *l = readyQueue.front();
    readyQueue.pop_front();
    accountState(l, LwpState::Running);
    ++l->accounting.dispatches;
    ++acct.dispatches;
    ++acct.contextSwitches;
    running = l;
    const sim::Tick probe_cost =
        pendingProbeCost + probeKernelEvent(evKernDispatch, l->pid.lwp);
    pendingProbeCost = 0;
    if (probe_cost > 0) {
        // Software instrumentation of the kernel: the event output
        // delays the dispatched process.
        simulation().scheduleAfter(probe_cost,
                                   [this, l] { resumeRunning(l); });
    } else {
        l->task.resume();
    }
}

void
NodeKernel::blockRunning(Lwp *lwp, BlockReason reason)
{
    assertRunning(*lwp, "block");
    accountState(lwp, LwpState::Blocked);
    lwp->blockReason = reason;
    running = nullptr;
    pendingProbeCost += probeKernelEvent(
        evKernBlock, (lwp->pid.lwp << 8) |
                         static_cast<std::uint32_t>(reason));
    maybeScheduleDispatch();
}

void
NodeKernel::yieldRunning(Lwp *lwp)
{
    assertRunning(*lwp, "yield");
    accountState(lwp, LwpState::Ready);
    running = nullptr;
    readyQueue.push_back(lwp);
    pendingProbeCost += probeKernelEvent(evKernYield, lwp->pid.lwp);
    maybeScheduleDispatch();
}

void
NodeKernel::resumeRunning(Lwp *lwp)
{
    if (lwp->state == LwpState::Terminated)
        return; // killed by a fault while its resume was in flight
    if (running != lwp)
        sim::panic("resumeRunning('%s'): process lost the CPU",
                   lwp->name.c_str());
    lwp->task.resume();
}

void
NodeKernel::beginSend(Lwp *lwp, Message msg)
{
    assertRunning(*lwp, "send");
    msg.src = lwp->pid;
    msg.sentAt = simulation().now();
    ++lwp->accounting.messagesSent;
    pendingProbeCost += probeKernelEvent(evKernSend, lwp->pid.lwp);
    // The CPU initiates the communication (send syscall + CU setup);
    // then the process blocks until the rendezvous completes while the
    // communication unit handles the entire data transfer.
    simulation().scheduleAfter(
        params().sendSyscallCost,
        [this, lwp, m = std::move(msg)]() mutable {
            if (lwp->state == LwpState::Terminated)
                return; // sender killed mid-syscall; nothing leaves
            blockRunning(lwp, BlockReason::Rendezvous);
            mach.routeMessage(std::move(m), false);
        });
}

bool
NodeKernel::hasMatch(const Lwp &lwp, const MessageFilter &filter) const
{
    for (const auto &m : lwp.inbox) {
        if (!filter || filter(m))
            return true;
    }
    return false;
}

Message
NodeKernel::acceptMatch(Lwp *lwp, const MessageFilter &filter)
{
    for (auto it = lwp->inbox.begin(); it != lwp->inbox.end(); ++it) {
        if (!filter || filter(*it)) {
            Message m = std::move(*it);
            lwp->inbox.erase(it);
            ++lwp->accounting.messagesReceived;
            lwp->waitFilter = nullptr;
            // Acceptance completes the sender's rendezvous.
            if (m.src != nobody)
                mach.sendRendezvousAck(m);
            return m;
        }
    }
    sim::panic("acceptMatch('%s'): no matching message in the inbox",
               lwp->name.c_str());
}

void
NodeKernel::deliver(Message msg)
{
    Lwp *dst = find(msg.dst.lwp);
    if (!dst)
        sim::panic("message for unknown process %u on node (%u,%u)",
                   msg.dst.lwp, id.cluster, id.node);
    if (dst->state == LwpState::Terminated) {
        sim::warn("message dropped: destination process '%s' terminated",
                  dst->name.c_str());
        // The drop is observable: accounted per node and emitted
        // through the kernel probe, instead of only a warning.
        ++acct.messagesDroppedTerminated;
        pendingProbeCost += probeKernelEvent(evKernDrop, dst->pid.lwp);
        // Still complete the sender's rendezvous so it does not hang.
        if (msg.src != nobody)
            mach.sendRendezvousAck(msg);
        return;
    }
    msg.deliveredAt = simulation().now();
    ++acct.messagesDelivered;
    pendingProbeCost += probeKernelEvent(evKernDeliver, dst->pid.lwp);
    dst->inbox.push_back(std::move(msg));
    if (dst->state == LwpState::Blocked &&
        dst->blockReason == BlockReason::Receive &&
        (!dst->waitFilter || dst->waitFilter(dst->inbox.back()))) {
        makeReady(dst);
    }
}

void
NodeKernel::ackArrived(std::uint32_t lwp_id)
{
    Lwp *l = find(lwp_id);
    if (!l)
        sim::panic("rendezvous ack for unknown process %u", lwp_id);
    if (l->state == LwpState::Terminated)
        return; // sender killed while the ack was in flight
    if (l->state != LwpState::Blocked ||
        l->blockReason != BlockReason::Rendezvous) {
        sim::panic("rendezvous ack for process '%s' which is %s/%s",
                   l->name.c_str(), lwpStateName(l->state),
                   blockReasonName(l->blockReason));
    }
    makeReady(l);
}

void
NodeKernel::emitDisplaySequence(Lwp *lwp,
                                std::vector<std::uint8_t> patterns,
                                sim::Tick total_cost)
{
    assertRunning(*lwp, "emitDisplay");
    const auto n = patterns.size();
    if (n == 0) {
        // Nothing to drive; still costs the call overhead.
        simulation().scheduleAfter(total_cost,
                                   [this, lwp] { resumeRunning(lwp); });
        return;
    }
    const sim::Tick spacing = total_cost / (n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t pattern = patterns[i];
        simulation().scheduleAfter(
            spacing * (i + 1), [this, pattern] {
                displayDev.write(pattern, simulation().now(), false);
            });
    }
    simulation().scheduleAfter(total_cost,
                               [this, lwp] { resumeRunning(lwp); });
}

void
NodeKernel::emitSerial(Lwp *lwp, std::uint64_t data, unsigned bits)
{
    assertRunning(*lwp, "emitSerial");
    const sim::Tick cost = params().terminalContextSwitch +
                           serialDev.transmissionTime(bits);
    simulation().scheduleAfter(cost, [this, lwp, data, bits] {
        serialDev.complete(data, bits, simulation().now());
        resumeRunning(lwp);
    });
}

sim::Tick
NodeKernel::localTime() const
{
    const long double drifted =
        static_cast<long double>(mach.sim().now()) *
        (1.0L + nodeClockDriftPpm * 1e-6L);
    long double local =
        drifted + static_cast<long double>(nodeClockOffset);
    if (local < 0.0L)
        local = 0.0L;
    return static_cast<sim::Tick>(local);
}

void
NodeKernel::emitSoftwareLog(Lwp *lwp, std::uint16_t token,
                            std::uint32_t param)
{
    assertRunning(*lwp, "emitSoftwareLog");
    // The rudimentary method of the paper's introduction: append a
    // record to a log file. The write is buffered file I/O on the
    // node - a heavyweight operation compared to hybrid_mon - and
    // the time stamp comes from the unsynchronized node clock.
    softLog.push_back(SoftwareLogRecord{localTime(), token, param});
    simulation().scheduleAfter(params().logWriteCost,
                               [this, lwp] { resumeRunning(lwp); });
}

void
NodeKernel::sleepRunning(Lwp *lwp, sim::Tick duration)
{
    assertRunning(*lwp, "sleep");
    blockRunning(lwp, BlockReason::Sleep);
    simulation().scheduleAfter(duration, [this, lwp] {
        if (lwp->state == LwpState::Blocked &&
            lwp->blockReason == BlockReason::Sleep)
            makeReady(lwp);
    });
}

void
NodeKernel::waitOnFlag(Lwp *lwp, EventFlag &flag)
{
    assertRunning(*lwp, "wait");
    if (&flag.kern != this)
        sim::panic("process '%s' waiting on a flag of another node "
                   "(flags are team-shared memory)", lwp->name.c_str());
    flag.waiters.push_back(lwp);
    blockRunning(lwp, BlockReason::Flag);
}

bool
NodeKernel::killLwp(Lwp *lwp)
{
    if (!lwp || lwp->state == LwpState::Terminated)
        return false;
    // Connection reset: senders whose messages sit unaccepted in the
    // victim's inbox would otherwise hang in their rendezvous.
    for (const Message &m : lwp->inbox) {
        if (m.src != nobody)
            mach.sendRendezvousAck(m);
    }
    lwp->inbox.clear();
    lwp->waitFilter = nullptr;
    const auto it =
        std::find(readyQueue.begin(), readyQueue.end(), lwp);
    if (it != readyQueue.end())
        readyQueue.erase(it);
    const bool was_running = (running == lwp);
    accountState(lwp, LwpState::Terminated);
    lwp->blockReason = BlockReason::None;
    // Destroy the coroutine frame without running onDone: this is an
    // external fault, not a normal exit, so the exception check and
    // initial-process bookkeeping of onTerminated must not run.
    lwp->task = sim::Task();
    pendingProbeCost += probeKernelEvent(evKernExit, lwp->pid.lwp);
    if (was_running) {
        running = nullptr;
        maybeScheduleDispatch();
    }
    mach.notifyTerminated(*lwp);
    return true;
}

void
NodeKernel::restartLwp(Lwp *lwp)
{
    if (!lwp)
        sim::panic("restartLwp(nullptr)");
    if (lwp->state != LwpState::Terminated)
        sim::panic("restartLwp('%s'): process is %s, not terminated",
                   lwp->name.c_str(), lwpStateName(lwp->state));
    if (!lwp->factory)
        sim::panic("restartLwp('%s'): no spawn factory",
                   lwp->name.c_str());
    lwp->task = lwp->factory();
    if (!lwp->task.valid())
        sim::panic("restartLwp('%s'): factory returned an invalid task",
                   lwp->name.c_str());
    lwp->task.promise().onDone = [this, lwp] { onTerminated(lwp); };
    accountState(lwp, LwpState::Created);
    lwp->blockReason = BlockReason::None;
    makeReady(lwp);
}

void
NodeKernel::onTerminated(Lwp *lwp)
{
    if (lwp->task.promise().error) {
        try {
            std::rethrow_exception(lwp->task.promise().error);
        } catch (const std::exception &e) {
            sim::panic("process '%s' terminated with exception: %s",
                       lwp->name.c_str(), e.what());
        } catch (...) {
            sim::panic("process '%s' terminated with unknown exception",
                       lwp->name.c_str());
        }
    }
    accountState(lwp, LwpState::Terminated);
    pendingProbeCost += probeKernelEvent(evKernExit, lwp->pid.lwp);
    if (running == lwp) {
        running = nullptr;
        maybeScheduleDispatch();
    }
    mach.notifyTerminated(*lwp);
}

std::string
NodeKernel::stateDump() const
{
    std::ostringstream os;
    for (const auto &l : lwps) {
        os << sim::strprintf(
            "  node(%2u,%2u) lwp %2u '%s': %s", id.cluster, id.node,
            l->pid.lwp, l->name.c_str(), lwpStateName(l->state));
        if (l->state == LwpState::Blocked)
            os << " (" << blockReasonName(l->blockReason) << ")";
        if (!l->inbox.empty())
            os << sim::strprintf(", %zu queued msg(s)", l->inbox.size());
        os << "\n";
    }
    return os.str();
}

} // namespace suprenum
} // namespace supmon
