/**
 * @file
 * SUPRENUM's mailbox mechanism for "asynchronous" communication.
 *
 * A mailbox is a light-weight process owned by the receiving process.
 * The sender of a message does not send the message directly to the
 * receiver but to the receiver's mailbox; the receiver reads his
 * mailbox whenever he wishes to do so. According to the
 * specification, the mailbox process is always in a receive state and
 * therefore the sender of a message will never be blocked.
 *
 * The paper's measurements revealed the flaw in that reasoning: since
 * the mailbox is a (light-weight) process, it must actually be
 * *running* to receive a message, and with the node's non-preemptive
 * round-robin scheduling it is only dispatched once the owner blocks
 * or yields. Consequently mailbox communication behaves very much
 * like synchronous communication (paper, section 4.3, version 1).
 *
 * This class reproduces the mechanism exactly: the mailbox process
 * loops in receive(); acceptance of a message (and thereby release of
 * the sender's rendezvous) happens when the mailbox process is
 * dispatched. The owner reads through a team-shared queue.
 */

#ifndef SUPRENUM_MAILBOX_HH
#define SUPRENUM_MAILBOX_HH

#include <coroutine>
#include <deque>
#include <optional>
#include <set>
#include <string>

#include "suprenum/kernel.hh"

namespace supmon
{
namespace suprenum
{

class Mailbox
{
  public:
    /**
     * Create a mailbox on @p kernel's node. Spawns the mailbox
     * light-weight process immediately.
     *
     * @param kernel node the owning process lives on.
     * @param name process name of the mailbox LWP.
     * @param team team of the owner (mailbox shares its memory).
     */
    Mailbox(NodeKernel &kernel, const std::string &name,
            unsigned team = 0);

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    /** Address remote senders must send to. */
    Pid
    pid() const
    {
        return boxPid;
    }

    /** Number of messages deposited and not yet read by the owner. */
    std::size_t
    depth() const
    {
        return queue.size();
    }

    bool
    empty() const
    {
        return queue.empty();
    }

    /** High-water mark of the deposit queue. */
    std::size_t
    maxDepth() const
    {
        return highWater;
    }

    /** Messages that went through the mailbox in total. */
    std::uint64_t
    messageCount() const
    {
        return total;
    }

    /**
     * Owner-side blocking read: completes once a message is available
     * in the (team-shared) deposit queue. Multiple readers are served
     * in FIFO order.
     */
    struct ReadAwaiter
    {
        Mailbox *box;
        Lwp *lwp;
        bool suspended = false;

        bool
        await_ready() const
        {
            box->kern.assertRunning(*lwp, "mailbox read");
            // Messages already earmarked for woken readers must not be
            // stolen by a reader that arrives later.
            return box->queue.size() > box->reserved &&
                   box->readers.empty();
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            suspended = true;
            box->readers.push_back(lwp);
            box->kern.blockRunning(lwp, BlockReason::Flag);
        }

        Message
        await_resume()
        {
            if (suspended)
                --box->reserved;
            return box->pop();
        }
    };

    /** Awaitable for the owning process: read the next message. */
    ReadAwaiter
    read(ProcessEnv &env)
    {
        return ReadAwaiter{this, &env.self()};
    }

    /**
     * Bounded-wait read for fault-tolerant owners: completes with a
     * message like read(), or with std::nullopt once @p timeout has
     * elapsed without one. The timeout is what lets a master notice
     * dead servants instead of blocking forever on their results.
     */
    struct TimedReadAwaiter
    {
        Mailbox *box;
        Lwp *lwp;
        sim::Tick timeout;
        bool suspended = false;

        bool
        await_ready() const
        {
            box->kern.assertRunning(*lwp, "mailbox timed read");
            return box->queue.size() > box->reserved &&
                   box->readers.empty();
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            suspended = true;
            box->readers.push_back(lwp);
            box->kern.blockRunning(lwp, BlockReason::Flag);
            box->armTimeout(lwp, timeout);
        }

        std::optional<Message>
        await_resume()
        {
            if (!suspended)
                return box->pop();
            if (box->timedOut.erase(lwp) > 0)
                return std::nullopt;
            --box->reserved;
            return box->pop();
        }
    };

    TimedReadAwaiter
    readFor(ProcessEnv &env, sim::Tick timeout)
    {
        return TimedReadAwaiter{this, &env.self(), timeout};
    }

    /** Discard all deposited messages (node crash lost the memory). */
    void
    clearQueue()
    {
        queue.clear();
        reserved = 0;
    }

  private:
    /** Body of the mailbox light-weight process. */
    static sim::Task mailboxProcess(ProcessEnv env, Mailbox *self);

    /** Deposit a message (called by the mailbox process). */
    void push(Message msg);

    /** Take the next deposited message (called by a reader). */
    Message pop();

    /** Schedule the wake-up for a timed read. */
    void armTimeout(Lwp *reader, sim::Tick timeout);

    NodeKernel &kern;
    Pid boxPid;
    std::deque<Message> queue;
    std::deque<Lwp *> readers;
    /** Timed readers woken by their timeout, not by a message. */
    std::set<Lwp *> timedOut;
    /** Queue entries earmarked for already-woken readers. */
    std::size_t reserved = 0;
    std::size_t highWater = 0;
    std::uint64_t total = 0;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_MAILBOX_HH
