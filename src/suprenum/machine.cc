#include "machine.hh"

#include <sstream>

#include "sim/logging.hh"

namespace supmon
{
namespace suprenum
{

namespace
{

/** The service process running on each cluster's disk node. */
sim::Task
diskServiceProcess(ProcessEnv env, std::uint64_t bytes_per_sec,
                   sim::Tick latency)
{
    for (;;) {
        Message req = co_await env.receive(withTag(tagDiskWrite));
        const auto &write = payloadAs<DiskWriteRequest>(req);
        co_await env.compute(
            latency + sim::transferTime(write.bytes, bytes_per_sec));
    }
}

} // namespace

Machine::Machine(sim::Simulation &simulation, MachineParams params)
    : simul(simulation), par(params)
{
    if (par.numClusters == 0 || par.numClusters > 16)
        sim::fatal("SUPRENUM supports 1..16 clusters (%u requested)",
                   par.numClusters);
    if (par.nodesPerCluster == 0 || par.nodesPerCluster > 16)
        sim::fatal("a cluster has 1..16 processing nodes (%u requested)",
                   par.nodesPerCluster);

    clusters.resize(par.numClusters);
    for (unsigned c = 0; c < par.numClusters; ++c) {
        Cluster &cl = clusters[c];
        cl.bus = std::make_unique<ClusterBus>(par.clusterBusBytesPerSec,
                                              par.clusterBusCount,
                                              par.busArbitration);
        cl.bus->attachObserver(
            [this, c](const BusTransfer &t) { clusters[c].diag.observe(t); });
        for (unsigned n = 0; n < par.nodesPerCluster; ++n) {
            cl.nodes.push_back(std::make_unique<NodeKernel>(
                *this, NodeId{static_cast<std::uint16_t>(c),
                              static_cast<std::uint16_t>(n)}));
        }
        cl.disk = std::make_unique<NodeKernel>(
            *this, NodeId{static_cast<std::uint16_t>(c),
                          static_cast<std::uint16_t>(par.nodesPerCluster)});
        cl.cuBusyUntil.assign(par.nodesPerCluster + 1, 0);
        cl.diskServicePid = cl.disk->spawn(
            "disk-service",
            [rate = par.diskBytesPerSec,
             lat = par.diskLatency](ProcessEnv env) {
                return diskServiceProcess(env, rate, lat);
            });
    }

    const unsigned cols = columns();
    const unsigned nrows = rows();
    for (unsigned r = 0; r < nrows; ++r)
        rowRings.emplace_back(par.suprenumBusBytesPerSec,
                              par.suprenumRingCount, par.tokenHopLatency);
    for (unsigned c = 0; c < cols; ++c)
        colRings.emplace_back(par.suprenumBusBytesPerSec,
                              par.suprenumRingCount, par.tokenHopLatency);
}

NodeKernel &
Machine::node(NodeId id)
{
    if (id.cluster >= clusters.size())
        sim::panic("no such cluster: %u", id.cluster);
    Cluster &cl = clusters[id.cluster];
    if (id.node < par.nodesPerCluster)
        return *cl.nodes[id.node];
    if (id.node == par.nodesPerCluster)
        return *cl.disk;
    sim::panic("no such node: (%u,%u)", id.cluster, id.node);
}

NodeKernel &
Machine::nodeByIndex(unsigned flat)
{
    return node(nodeIdByIndex(flat));
}

NodeId
Machine::nodeIdByIndex(unsigned flat) const
{
    if (flat >= par.totalProcessingNodes())
        sim::panic("processing node index %u out of range", flat);
    return NodeId{static_cast<std::uint16_t>(flat / par.nodesPerCluster),
                  static_cast<std::uint16_t>(flat % par.nodesPerCluster)};
}

NodeKernel &
Machine::diskNode(unsigned cluster)
{
    return *clusters.at(cluster).disk;
}

Pid
Machine::diskService(unsigned cluster) const
{
    return clusters.at(cluster).diskServicePid;
}

DiagnosisNode &
Machine::diagnosis(unsigned cluster)
{
    return clusters.at(cluster).diag;
}

const DiagnosisNode &
Machine::diagnosis(unsigned cluster) const
{
    return clusters.at(cluster).diag;
}

Pid
Machine::spawnOn(NodeId node_id, const std::string &name, ProcessFn fn,
                 unsigned team)
{
    return node(node_id).spawn(name, std::move(fn), team);
}

void
Machine::setOperatorTimeLimit(sim::Tick limit)
{
    simul.scheduleAt(limit, [this] {
        if (exited)
            return;
        killedByOperator = true;
        sim::warn("operator time limit reached: resources released "
                  "before job completion (section 2.2)");
        simul.requestStop();
    });
}

bool
Machine::runToCompletion(sim::Tick limit)
{
    if (!haveInitial)
        sim::warn("runToCompletion without an initial process");
    simul.run(limit);
    if (killedByOperator)
        return false;
    if (haveInitial && !exited) {
        sim::warn("application did not terminate (deadlock or tick "
                  "limit); process states:\n%s", stateDump().c_str());
        return false;
    }
    return true;
}

std::string
Machine::stateDump() const
{
    std::ostringstream os;
    for (const auto &cl : clusters) {
        for (const auto &n : cl.nodes)
            os << n->stateDump();
        os << cl.disk->stateDump();
    }
    return os.str();
}

sim::Tick &
Machine::cuOf(NodeId id)
{
    Cluster &cl = clusters.at(id.cluster);
    return cl.cuBusyUntil.at(id.node);
}

sim::Tick
Machine::transportDelay(const Message &msg, bool is_ack)
{
    const sim::Tick now = simul.now();
    const std::uint64_t wire_bytes =
        par.messageHeaderBytes + (is_ack ? par.ackBytes : msg.bytes);

    if (msg.src.node == msg.dst.node)
        return now + par.localDeliverLatency;

    // The sender's communication unit handles the entire transfer;
    // it serializes concurrent sends from one node.
    sim::Tick t = std::max(now, cuOf(msg.src.node));

    BusTransfer rec;
    rec.src = msg.src.node;
    rec.dst = msg.dst.node;
    rec.bytes = static_cast<std::uint32_t>(wire_bytes);
    rec.ack = is_ack;

    if (msg.src.node.cluster == msg.dst.node.cluster) {
        // Intra-cluster: one transfer on the (dual) cluster bus.
        ClusterBus &bus = *clusters[msg.src.node.cluster].bus;
        const BusGrant g = bus.acquire(t, wire_bytes);
        cuOf(msg.src.node) = g.end;
        rec.start = g.start;
        rec.end = g.end;
        bus.notify(rec);
        return g.end + par.deliverLatency;
    }

    // Inter-cluster: src node -> communication node (cluster bus),
    // SUPRENUM bus ring leg(s), communication node -> dst node.
    Cluster &src_cl = clusters[msg.src.node.cluster];
    Cluster &dst_cl = clusters[msg.dst.node.cluster];

    const BusGrant g1 = src_cl.bus->acquire(t, wire_bytes);
    cuOf(msg.src.node) = g1.end;
    rec.start = g1.start;
    rec.end = g1.end;
    src_cl.bus->notify(rec);

    sim::Tick cursor = std::max(g1.end, src_cl.commNodeBusy[0]) +
                       par.commNodeForwardLatency;
    src_cl.commNodeBusy[0] = cursor;

    const unsigned src_row = rowOf(msg.src.node.cluster);
    const unsigned src_col = colOf(msg.src.node.cluster);
    const unsigned dst_row = rowOf(msg.dst.node.cluster);
    const unsigned dst_col = colOf(msg.dst.node.cluster);

    if (src_col != dst_col) {
        const unsigned hops =
            (dst_col + columns() - src_col) % columns();
        const BusGrant gr =
            rowRings[src_row].acquire(cursor, wire_bytes, hops);
        cursor = gr.end;
    }
    if (src_row != dst_row) {
        if (src_col != dst_col) {
            // Store-and-forward in the intermediate cluster's
            // communication node.
            cursor += par.commNodeForwardLatency;
        }
        const unsigned hops = (dst_row + rows() - src_row) % rows();
        const BusGrant gc =
            colRings[dst_col].acquire(cursor, wire_bytes, hops);
        cursor = gc.end;
    }

    cursor = std::max(cursor, dst_cl.commNodeBusy[1]) +
             par.commNodeForwardLatency;
    dst_cl.commNodeBusy[1] = cursor;

    const BusGrant g2 = dst_cl.bus->acquire(cursor, wire_bytes);
    BusTransfer rec2 = rec;
    rec2.start = g2.start;
    rec2.end = g2.end;
    dst_cl.bus->notify(rec2);

    return g2.end + par.deliverLatency;
}

void
Machine::routeMessage(Message msg, bool is_ack)
{
    ++routedCount;
    sim::Tick extra_delay = 0;
    if (transportFaultFn) {
        const TransportFault fault = transportFaultFn(msg, is_ack);
        if (fault.action == TransportFault::Action::Drop && !is_ack) {
            // The message crosses the bus and is lost at delivery.
            // The communication units use only link-level handshakes,
            // so the sender's rendezvous still completes: from the
            // application's point of view the transfer succeeded.
            const sim::Tick lost_at = transportDelay(msg, is_ack);
            simul.scheduleAt(lost_at, [this, m = std::move(msg)] {
                if (m.src != nobody)
                    sendRendezvousAck(m);
            });
            return;
        }
        if (fault.action == TransportFault::Action::Corrupt && !is_ack)
            msg.corrupted = true;
        extra_delay = fault.extraDelay;
    }
    const sim::Tick arrival = transportDelay(msg, is_ack) + extra_delay;
    NodeKernel &dst = node(msg.dst.node);
    if (is_ack) {
        const std::uint32_t sender = msg.dst.lwp;
        simul.scheduleAt(arrival,
                         [&dst, sender] { dst.ackArrived(sender); });
    } else {
        simul.scheduleAt(arrival, [&dst, m = std::move(msg)]() mutable {
            dst.deliver(std::move(m));
        });
    }
}

void
Machine::sendRendezvousAck(const Message &accepted)
{
    Message ack;
    ack.src = accepted.dst;
    ack.dst = accepted.src;
    ack.tag = accepted.tag;
    ack.bytes = par.ackBytes;
    ack.sentAt = simul.now();
    routeMessage(std::move(ack), true);
}

void
Machine::notifyTerminated(const Lwp &lwp)
{
    if (haveInitial && lwp.pid == initialPid && !exited) {
        exited = true;
        exitTick = simul.now();
    }
}

} // namespace suprenum
} // namespace supmon
