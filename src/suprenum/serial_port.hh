/**
 * @file
 * The V.24 serial terminal interface of a SUPRENUM processing node.
 *
 * Intended for service personnel; data transfer is slow (less than
 * 20 KBit/s). The paper evaluates it as a candidate measurement
 * interface and rejects it: outputting 48 bits of event data takes
 * more than 2.4 ms, not counting context switching. We model it so
 * the interface comparison experiment (bench_interface_comparison)
 * can regenerate that number.
 */

#ifndef SUPRENUM_SERIAL_PORT_HH
#define SUPRENUM_SERIAL_PORT_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace supmon
{
namespace suprenum
{

class SerialPort
{
  public:
    /** Callback invoked when a unit of data finished transmission. */
    using Observer =
        std::function<void(std::uint64_t data, unsigned bits,
                           sim::Tick when)>;

    explicit SerialPort(std::uint64_t bits_per_second = 19200)
        : rate(bits_per_second)
    {
    }

    /** Time to clock out @p bits serially (start/stop bits included:
     *  each 8 data bits cost 10 bit times, as usual for V.24). */
    sim::Tick
    transmissionTime(unsigned bits) const
    {
        const std::uint64_t line_bits =
            (static_cast<std::uint64_t>(bits) + 7) / 8 * 10;
        return sim::transferTime(line_bits, rate);
    }

    /** Record that @p bits of @p data finished transmission at
     *  @p when. */
    void
    complete(std::uint64_t data, unsigned bits, sim::Tick when)
    {
        ++transmissions;
        if (observer)
            observer(data, bits, when);
    }

    void
    attachObserver(Observer obs)
    {
        observer = std::move(obs);
    }

    std::uint64_t
    transmissionCount() const
    {
        return transmissions;
    }

    std::uint64_t
    bitsPerSecond() const
    {
        return rate;
    }

  private:
    std::uint64_t rate;
    Observer observer;
    std::uint64_t transmissions = 0;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_SERIAL_PORT_HH
