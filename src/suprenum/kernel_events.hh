/**
 * @file
 * Operating-system instrumentation events.
 *
 * The paper's conclusion names OS instrumentation as the next goal:
 * "Instrumenting SUPRENUM's operating system to find more detailed
 * information about the behaviour of the node scheduling algorithm
 * and internode communication is one of our goals."
 *
 * This extension implements it: a node kernel can be given a probe
 * that is invoked on every scheduling and communication action. The
 * probe may be ideal (zero cost - like a hardware monitor wired into
 * the kernel) or may charge a per-event CPU cost (software
 * instrumentation of the kernel, with the intrusion that implies).
 *
 * Token layout: high byte 7 marks kernel-class events, keeping them
 * disjoint from application tokens.
 */

#ifndef SUPRENUM_KERNEL_EVENTS_HH
#define SUPRENUM_KERNEL_EVENTS_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace supmon
{
namespace suprenum
{

enum KernelToken : std::uint16_t
{
    /** A process was dispatched; param = local process id. */
    evKernDispatch = 0x0701,
    /** The running process blocked; param = (lwp << 8) | reason. */
    evKernBlock = 0x0702,
    /** A process became ready; param = local process id. */
    evKernReady = 0x0703,
    /** A message was delivered to this node; param = dst lwp. */
    evKernDeliver = 0x0704,
    /** A process initiated a send; param = local process id. */
    evKernSend = 0x0705,
    /** The running process yielded; param = local process id. */
    evKernYield = 0x0706,
    /** A process terminated; param = local process id. */
    evKernExit = 0x0707,
    /** A message for a terminated process was dropped; param = the
     *  dead destination's local process id. */
    evKernDrop = 0x0708,
};

/** Name of a kernel event token (for dictionaries and reports). */
const char *kernelTokenName(std::uint16_t token);

/** Probe signature: (token, param) at the current simulated time. */
using KernelProbeFn =
    std::function<void(std::uint16_t token, std::uint32_t param)>;

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_KERNEL_EVENTS_HH
