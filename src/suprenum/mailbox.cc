#include "mailbox.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace supmon
{
namespace suprenum
{

Mailbox::Mailbox(NodeKernel &kernel, const std::string &name,
                 unsigned team)
    : kern(kernel)
{
    boxPid = kern.spawn(
        name, [this](ProcessEnv env) { return mailboxProcess(env, this); },
        team);
}

sim::Task
Mailbox::mailboxProcess(ProcessEnv env, Mailbox *self)
{
    // "According to the specifications of SUPRENUM's mailbox mechanism
    // the mailbox process is always in a receive state." The receive
    // completes - and thereby releases the sender - only when this
    // process is dispatched by the round-robin scheduler.
    for (;;) {
        Message m = co_await env.receive();
        self->push(std::move(m));
    }
}

void
Mailbox::push(Message msg)
{
    queue.push_back(std::move(msg));
    ++total;
    highWater = std::max(highWater, queue.size());
    // A fault may have killed a reader while it waited.
    while (!readers.empty() &&
           readers.front()->state == LwpState::Terminated)
        readers.pop_front();
    if (!readers.empty()) {
        Lwp *reader = readers.front();
        readers.pop_front();
        ++reserved;
        kern.makeReady(reader);
    }
}

void
Mailbox::armTimeout(Lwp *reader, sim::Tick timeout)
{
    kern.simulation().scheduleAfter(timeout, [this, reader] {
        const auto it =
            std::find(readers.begin(), readers.end(), reader);
        if (it == readers.end())
            return; // already woken by a message (or killed)
        if (reader->state != LwpState::Blocked)
            return;
        readers.erase(it);
        timedOut.insert(reader);
        kern.makeReady(reader);
    });
}

Message
Mailbox::pop()
{
    if (queue.empty())
        sim::panic("mailbox pop on an empty deposit queue");
    Message m = std::move(queue.front());
    queue.pop_front();
    return m;
}

} // namespace suprenum
} // namespace supmon
