#include "kernel_events.hh"

namespace supmon
{
namespace suprenum
{

const char *
kernelTokenName(std::uint16_t token)
{
    switch (token) {
      case evKernDispatch:
        return "Dispatch";
      case evKernBlock:
        return "Block";
      case evKernReady:
        return "Ready";
      case evKernDeliver:
        return "Deliver";
      case evKernSend:
        return "Send";
      case evKernYield:
        return "Yield";
      case evKernExit:
        return "Exit";
      case evKernDrop:
        return "Drop";
    }
    return "?";
}

} // namespace suprenum
} // namespace supmon
