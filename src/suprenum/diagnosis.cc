#include "diagnosis.hh"

#include <sstream>

#include "sim/logging.hh"

namespace supmon
{
namespace suprenum
{

std::string
DiagnosisNode::report() const
{
    std::ostringstream os;
    os << sim::strprintf(
        "  cluster bus: %llu transfers, %llu bytes, busy %.3f ms\n",
        static_cast<unsigned long long>(total.transfers),
        static_cast<unsigned long long>(total.bytes),
        sim::toMilliseconds(total.busBusy));
    os << sim::strprintf("  mean transfer size: %.1f bytes\n",
                         transferSize.mean());
    os << sim::strprintf("  distinct (src,dst) pairs: %zu\n",
                         matrix.size());
    return os.str();
}

} // namespace suprenum
} // namespace supmon
