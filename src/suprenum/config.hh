/**
 * @file
 * Configuration of the simulated SUPRENUM machine.
 *
 * Published architectural values (ISCA'92 paper, section 2) are used as
 * defaults; cost constants that the paper does not publish are
 * calibrated so that the paper's measured shapes emerge, and are marked
 * "calibrated" below (see DESIGN.md section 5).
 */

#ifndef SUPRENUM_CONFIG_HH
#define SUPRENUM_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace supmon
{
namespace suprenum
{

/** Identifies one node inside the whole machine. */
struct NodeId
{
    std::uint16_t cluster = 0;
    /**
     * Slot within the cluster: 0..15 are processing nodes; special
     * nodes (communication, disk, diagnosis) are modelled as cluster
     * members but addressed through dedicated accessors.
     */
    std::uint16_t node = 0;

    friend bool
    operator==(const NodeId &a, const NodeId &b)
    {
        return a.cluster == b.cluster && a.node == b.node;
    }

    friend bool
    operator!=(const NodeId &a, const NodeId &b)
    {
        return !(a == b);
    }
};

/** Identifies one light-weight process in the whole machine. */
struct Pid
{
    NodeId node;
    std::uint32_t lwp = 0;

    friend bool
    operator==(const Pid &a, const Pid &b)
    {
        return a.node == b.node && a.lwp == b.lwp;
    }

    friend bool
    operator!=(const Pid &a, const Pid &b)
    {
        return !(a == b);
    }
};

/** An invalid / "nobody" process id. */
constexpr Pid nobody{NodeId{0xffff, 0xffff}, 0xffffffff};

/**
 * All machine parameters in one aggregate so that experiments can
 * tweak any of them.
 */
struct MachineParams
{
    // ----- topology (published) -------------------------------------
    /** Number of clusters; the full system has 16 in a 4x4 torus. */
    unsigned numClusters = 1;
    /** Torus columns; rows = numClusters / torusColumns. */
    unsigned torusColumns = 4;
    /** Processing nodes per cluster (up to 16). */
    unsigned nodesPerCluster = 16;
    /** Main memory per node: 8 MByte (published). */
    std::uint64_t nodeMemoryBytes = 8ull << 20;

    // ----- interconnect (published rates) ---------------------------
    /** One cluster bus: 160 MByte/s; there are two per cluster. */
    std::uint64_t clusterBusBytesPerSec = 160ull * 1000 * 1000;
    /** Number of parallel cluster buses (published: 2). */
    unsigned clusterBusCount = 2;
    /** SUPRENUM (inter-cluster) bus: 25 MByte/s token ring. */
    std::uint64_t suprenumBusBytesPerSec = 25ull * 1000 * 1000;
    /** Ring duplication factor (published: torus is duplicated). */
    unsigned suprenumRingCount = 2;

    // ----- interconnect cost details (calibrated) --------------------
    /** Bus arbitration overhead per transfer. */
    sim::Tick busArbitration = sim::microseconds(4);
    /** Protocol header added to every transfer. */
    std::uint32_t messageHeaderBytes = 64;
    /** Size of a rendezvous acknowledgement on the wire. */
    std::uint32_t ackBytes = 16;
    /** Token latency per cluster hop on the SUPRENUM bus. */
    sim::Tick tokenHopLatency = sim::microseconds(20);
    /** Store-and-forward latency inside a communication node. */
    sim::Tick commNodeForwardLatency = sim::microseconds(150);
    /** Latency of a purely node-local message delivery. */
    sim::Tick localDeliverLatency = sim::microseconds(30);

    // ----- node kernel (calibrated; paper: ctx switch < 1 ms) -------
    /** Context switch between light-weight processes of one node. */
    sim::Tick contextSwitchCost = sim::microseconds(150);
    /** CPU time to initiate a send (syscall + CU setup). */
    sim::Tick sendSyscallCost = sim::microseconds(400);
    /** Kernel interrupt handling when a message arrives. */
    sim::Tick deliverLatency = sim::microseconds(2500);

    // ----- monitoring interfaces (published, section 3.2) -----------
    /**
     * Total CPU cost of one hybrid_mon() call: "less than one
     * twentieth" of the >2.4 ms terminal path.
     */
    sim::Tick hybridMonCost = sim::microseconds(100);
    /** Number of display writes per hybrid_mon (trigger+data pairs). */
    unsigned displayWritesPerEvent = 32;
    /** Serial terminal interface rate: "less than 20 KBit/s". */
    std::uint64_t terminalBitsPerSec = 19200;
    /** Context switch incurred by terminal output (paper, 3.2). */
    sim::Tick terminalContextSwitch = sim::microseconds(500);
    /** Cost of one buffered log-file write (the "rudimentary method"
     *  of section 1; calibrated). */
    sim::Tick logWriteCost = sim::microseconds(800);

    // ----- disk node (calibrated) ------------------------------------
    /** Disk node write bandwidth. */
    std::uint64_t diskBytesPerSec = 1000ull * 1000;
    /** Disk request base latency. */
    sim::Tick diskLatency = sim::microseconds(500);

    // ----- front end (section 2.2) ------------------------------------
    /** Download rate from the front-end computer to the partition
     *  ("the code of the user program is then downloaded..."). */
    std::uint64_t frontEndBytesPerSec = 1000ull * 1000;

    /** Convenience: total machine-wide processing node count. */
    unsigned
    totalProcessingNodes() const
    {
        return numClusters * nodesPerCluster;
    }
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_CONFIG_HH
