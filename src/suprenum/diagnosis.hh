/**
 * @file
 * The cluster diagnosis node.
 *
 * "Finally, there is one cluster diagnosis node which monitors the
 * clusterbus and maintains statistical records. Only communication
 * activities can be monitored by the diagnosis node." (paper, 2.1)
 *
 * This is the built-in, profiling-style monitoring facility of the
 * machine: it can tell *how much* communication happened, but not
 * *why* a program behaves the way it does. The reproduction keeps it
 * as the comparator for the hybrid monitoring approach (see
 * bench_ablation_intrusion and the quickstart example).
 */

#ifndef SUPRENUM_DIAGNOSIS_HH
#define SUPRENUM_DIAGNOSIS_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "sim/stats.hh"
#include "suprenum/bus.hh"

namespace supmon
{
namespace suprenum
{

class DiagnosisNode
{
  public:
    void
    observe(const BusTransfer &t)
    {
        ++total.transfers;
        total.bytes += t.bytes;
        total.busBusy += t.end - t.start;
        transferSize.push(static_cast<double>(t.bytes));
        auto key = std::make_pair(flatOf(t.src), flatOf(t.dst));
        auto &edge = matrix[key];
        ++edge.transfers;
        edge.bytes += t.bytes;
        edge.busBusy += t.end - t.start;
    }

    struct Counters
    {
        std::uint64_t transfers = 0;
        std::uint64_t bytes = 0;
        sim::Tick busBusy = 0;
    };

    const Counters &
    totals() const
    {
        return total;
    }

    /** Per (src,dst) traffic matrix, keys are flat node numbers. */
    const std::map<std::pair<unsigned, unsigned>, Counters> &
    trafficMatrix() const
    {
        return matrix;
    }

    const sim::SummaryStat &
    transferSizeStat() const
    {
        return transferSize;
    }

    /** Render the statistical record as a short report. */
    std::string report() const;

  private:
    static unsigned
    flatOf(NodeId id)
    {
        return static_cast<unsigned>(id.cluster) * 64u + id.node;
    }

    Counters total;
    std::map<std::pair<unsigned, unsigned>, Counters> matrix;
    sim::SummaryStat transferSize;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_DIAGNOSIS_HH
