/**
 * @file
 * The whole simulated SUPRENUM machine: clusters of processing nodes
 * connected by dual cluster buses, clusters connected in a torus by
 * duplicated token-ring SUPRENUM buses via communication nodes, one
 * disk node and one diagnosis node per cluster.
 *
 * The Machine owns every NodeKernel and provides the message routing
 * fabric (communication units, buses, communication nodes) that the
 * kernels use. It also tracks the application lifecycle: the program
 * ends when its *initial process* terminates (paper, section 2.2).
 */

#ifndef SUPRENUM_MACHINE_HH
#define SUPRENUM_MACHINE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "suprenum/bus.hh"
#include "suprenum/config.hh"
#include "suprenum/diagnosis.hh"
#include "suprenum/kernel.hh"

namespace supmon
{
namespace suprenum
{

/** Reserved message tag for disk node write requests. */
constexpr int tagDiskWrite = -100;

/** Payload of a disk write request. */
struct DiskWriteRequest
{
    std::uint32_t bytes = 0;
};

/**
 * Verdict of the transport-fault hook for one routed message. The
 * default value is a clean delivery, so an absent hook and a hook
 * returning {} behave identically.
 */
struct TransportFault
{
    enum class Action
    {
        Deliver, ///< normal delivery
        Drop,    ///< message lost on the bus
        Corrupt, ///< delivered, but flagged corrupted
    };

    Action action = Action::Deliver;
    /** Additional transport latency (late delivery faults). */
    sim::Tick extraDelay = 0;
};

/** Consulted once per routed message (not per ack) when installed. */
using TransportFaultFn =
    std::function<TransportFault(const Message &, bool is_ack)>;

class Machine
{
  public:
    Machine(sim::Simulation &simulation, MachineParams params);
    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    sim::Simulation &
    sim()
    {
        return simul;
    }

    const MachineParams &
    params() const
    {
        return par;
    }

    // ------------------------------------------------------------------
    // Topology access.
    // ------------------------------------------------------------------

    /** Processing node (slot 0..nodesPerCluster-1) or the disk node
     *  (slot == nodesPerCluster). */
    NodeKernel &node(NodeId id);

    /** Processing node by machine-wide flat index (cluster-major). */
    NodeKernel &nodeByIndex(unsigned flat);

    /** NodeId of a flat processing-node index. */
    NodeId nodeIdByIndex(unsigned flat) const;

    /** The disk node of a cluster. */
    NodeKernel &diskNode(unsigned cluster);

    /** Pid of the disk service process of a cluster. */
    Pid diskService(unsigned cluster) const;

    /** The (passive) diagnosis node of a cluster. */
    DiagnosisNode &diagnosis(unsigned cluster);
    const DiagnosisNode &diagnosis(unsigned cluster) const;

    // ------------------------------------------------------------------
    // Process management.
    // ------------------------------------------------------------------

    /** Spawn a process on the given node. */
    Pid spawnOn(NodeId node_id, const std::string &name, ProcessFn fn,
                unsigned team = 0);

    /**
     * Mark @p pid as the application's initial process; its
     * termination terminates the whole application.
     */
    void
    setInitialProcess(Pid pid)
    {
        initialPid = pid;
        haveInitial = true;
    }

    /**
     * Operator-imposed time limit (section 2.2): "There is a certain
     * time limit which can be set by the operator, after which the
     * resources assigned to a user are released, even if that user's
     * job is not yet completed. This is done to prevent
     * monopolization." When the limit fires before the application
     * exits, the run is aborted and operatorKilled() reports it.
     */
    void setOperatorTimeLimit(sim::Tick limit);

    bool
    operatorKilled() const
    {
        return killedByOperator;
    }

    /** Time to download @p bytes from the front-end computer to the
     *  partition (program code, scene descriptions, ...). */
    sim::Tick
    downloadTime(std::uint64_t bytes) const
    {
        return sim::transferTime(bytes, par.frontEndBytesPerSec);
    }

    bool
    applicationExited() const
    {
        return exited;
    }

    sim::Tick
    applicationExitTime() const
    {
        return exitTick;
    }

    /**
     * Run the simulation until the application's initial process has
     * terminated and all remaining events (message transport, monitor
     * drain, ...) are done, or until @p limit.
     *
     * @return true if the application exited; false on timeout /
     * deadlock (a state dump is emitted through warn()).
     */
    bool runToCompletion(sim::Tick limit = sim::maxTick);

    /** Multi-line dump of every node's process states. */
    std::string stateDump() const;

    // ------------------------------------------------------------------
    // Transport fabric (used by NodeKernel).
    // ------------------------------------------------------------------

    /**
     * Route a message (or a rendezvous acknowledgement) from
     * msg.src.node to msg.dst.node through communication unit,
     * cluster bus(es) and - across clusters - communication nodes and
     * the SUPRENUM bus. Delivery is scheduled on the destination
     * kernel.
     */
    void routeMessage(Message msg, bool is_ack);

    /**
     * Install a fault-injection hook on the transport fabric. Used by
     * faults::FaultInjector; normal runs never install one, keeping
     * routeMessage on the exact healthy-run path.
     */
    void
    setTransportFault(TransportFaultFn fn)
    {
        transportFaultFn = std::move(fn);
    }

    /** Issue the rendezvous acknowledgement for an accepted message. */
    void sendRendezvousAck(const Message &accepted);

    /** Kernel callback: a process terminated. */
    void notifyTerminated(const Lwp &lwp);

    /** Total messages routed (including acks). */
    std::uint64_t
    messagesRouted() const
    {
        return routedCount;
    }

  private:
    struct Cluster
    {
        std::vector<std::unique_ptr<NodeKernel>> nodes;
        std::unique_ptr<NodeKernel> disk;
        std::unique_ptr<ClusterBus> bus;
        DiagnosisNode diag;
        /** Communication-unit DMA engines, one per node slot
         *  (disk node = last entry). */
        std::vector<sim::Tick> cuBusyUntil;
        /** Store-and-forward availability of the two communication
         *  nodes (outbound = 0, inbound = 1). */
        sim::Tick commNodeBusy[2] = {0, 0};
        Pid diskServicePid;
    };

    /** Compute arrival time of a transfer and notify buses/diag. */
    sim::Tick transportDelay(const Message &msg, bool is_ack);

    sim::Tick &cuOf(NodeId id);

    unsigned
    rowOf(unsigned cluster) const
    {
        return cluster / columns();
    }

    unsigned
    colOf(unsigned cluster) const
    {
        return cluster % columns();
    }

    unsigned
    columns() const
    {
        return par.numClusters < par.torusColumns ? par.numClusters
                                                  : par.torusColumns;
    }

    unsigned
    rows() const
    {
        const unsigned c = columns();
        return (par.numClusters + c - 1) / c;
    }

    sim::Simulation &simul;
    MachineParams par;
    std::vector<Cluster> clusters;
    std::vector<RingBus> rowRings;
    std::vector<RingBus> colRings;

    Pid initialPid = nobody;
    bool haveInitial = false;
    bool exited = false;
    bool killedByOperator = false;
    sim::Tick exitTick = 0;
    std::uint64_t routedCount = 0;
    TransportFaultFn transportFaultFn;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_MACHINE_HH
