/**
 * @file
 * Inter-process messages of the SUPRENUM programming model.
 *
 * Processes communicate exclusively by messages (section 2.2 of the
 * paper). The payload is carried as a std::any copy; its simulated
 * wire size is given explicitly in bytes so that transfer times are
 * independent of host representation.
 */

#ifndef SUPRENUM_MESSAGE_HH
#define SUPRENUM_MESSAGE_HH

#include <any>
#include <cstdint>
#include <functional>

#include "sim/types.hh"
#include "suprenum/config.hh"

namespace supmon
{
namespace suprenum
{

struct Message
{
    Pid src = nobody;
    Pid dst = nobody;
    /** Application-level tag used for selective receive. */
    int tag = 0;
    /** Simulated payload size in bytes (excluding protocol header). */
    std::uint32_t bytes = 0;
    /** The payload itself (host-side data carried along). */
    std::any payload;
    /** Time at which the sender issued the send. */
    sim::Tick sentAt = 0;
    /** Time at which the message was delivered to the target node. */
    sim::Tick deliveredAt = 0;
    /**
     * Set by fault injection when the transfer was garbled on a bus.
     * The host-side payload is kept intact; receivers that check the
     * flag model a checksum failure and must discard the message.
     */
    bool corrupted = false;
};

/** Predicate used by selective receive. */
using MessageFilter = std::function<bool(const Message &)>;

/** A filter accepting any message. */
inline MessageFilter
anyMessage()
{
    return [](const Message &) { return true; };
}

/** A filter accepting only messages with the given tag. */
inline MessageFilter
withTag(int tag)
{
    return [tag](const Message &m) { return m.tag == tag; };
}

/** Extract a typed payload from a message; panics on type mismatch. */
template <typename T>
const T &
payloadAs(const Message &m)
{
    const T *p = std::any_cast<T>(&m.payload);
    if (!p)
        throw std::bad_any_cast();
    return *p;
}

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_MESSAGE_HH
