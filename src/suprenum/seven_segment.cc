#include "seven_segment.hh"

namespace supmon
{
namespace suprenum
{

std::uint8_t
sevenSegmentPatternOf(std::uint8_t glyph)
{
    for (std::uint8_t i = 0; i < 16; ++i) {
        if (sevenSegmentFont[i] == glyph)
            return i;
    }
    return 0xff;
}

void
SevenSegmentDisplay::write(std::uint8_t pattern, sim::Tick when,
                           bool firmware)
{
    if (firmware && monitoringReserved) {
        ++suppressed;
        return;
    }
    curGlyph = sevenSegmentFont[pattern & 0x0f];
    if (observer)
        observer(curGlyph, when);
}

} // namespace suprenum
} // namespace supmon
