/**
 * @file
 * The per-node operating system kernel of the simulated SUPRENUM.
 *
 * Responsibilities:
 *  - light-weight process (LWP) management and the plain round-robin,
 *    non-preemptive scheduler: a scheduled process runs until it
 *    blocks or relinquishes the processor deliberately;
 *  - the message-passing primitives (rendezvous send / selective
 *    receive) the programming model builds on;
 *  - team-shared EventFlag synchronization;
 *  - access to the node's measurement devices (seven segment display,
 *    V.24 serial port).
 *
 * Processes are C++20 coroutines; all kernel services are awaitables
 * obtained through a ProcessEnv handle:
 *
 * @code
 * sim::Task servant(suprenum::ProcessEnv env) {
 *     for (;;) {
 *         auto job = co_await env.receive(suprenum::withTag(JOB));
 *         co_await env.compute(sim::milliseconds(10));
 *         co_await env.send(master, 128, RESULT, makeResult(job));
 *     }
 * }
 * @endcode
 *
 * Rendezvous semantics: a send() blocks the sender until the receiver
 * *accepts* the message, i.e. until the receiving process is actually
 * dispatched and executes a matching receive. This is true for every
 * transport-level send on SUPRENUM; the mailbox mechanism builds its
 * (intended) asynchrony on top of it - see mailbox.hh and the paper's
 * section 4.3 for why that fails.
 */

#ifndef SUPRENUM_KERNEL_HH
#define SUPRENUM_KERNEL_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/task.hh"
#include "sim/types.hh"
#include "suprenum/config.hh"
#include "suprenum/kernel_events.hh"
#include "suprenum/lwp.hh"
#include "suprenum/message.hh"
#include "suprenum/serial_port.hh"
#include "suprenum/seven_segment.hh"

namespace supmon
{
namespace suprenum
{

class Machine;
class NodeKernel;
class ProcessEnv;

/**
 * One record of the rudimentary software log-file monitoring the
 * paper's introduction dismisses: stamped with the *node-local*
 * clock, because "most parallel systems do not provide a global clock
 * with high resolution".
 */
struct SoftwareLogRecord
{
    /** Node-local clock reading (offset + drift applied). */
    sim::Tick localTimestamp = 0;
    std::uint16_t token = 0;
    std::uint32_t param = 0;
};

/** Factory signature for spawning a process body. */
using ProcessFn = std::function<sim::Task(ProcessEnv)>;

/**
 * Team-shared binary condition, the "shared variable" synchronization
 * used by the communication agents of the paper's version 2/3 ray
 * tracers. Signals are lost if nobody waits; users must re-check
 * their predicate after wake-up (safe here because scheduling is
 * non-preemptive: there is no window between predicate check and
 * wait()).
 */
class EventFlag
{
  public:
    explicit EventFlag(NodeKernel &kernel) : kern(kernel)
    {
    }

    EventFlag(const EventFlag &) = delete;
    EventFlag &operator=(const EventFlag &) = delete;

    /** Wake all waiting processes (they become ready). */
    void signalAll();

    /** Wake the longest-waiting process, if any. */
    void signalOne();

    /** Number of processes currently waiting. */
    std::size_t
    waiterCount() const
    {
        return waiters.size();
    }

  private:
    friend class NodeKernel;
    friend class ProcessEnv;

    NodeKernel &kern;
    std::deque<Lwp *> waiters;
};

/**
 * Node-level summary counters ("accounting"). The paper's point is
 * that such summary data cannot explain behaviour; we expose it so the
 * comparison can be made.
 */
struct NodeAccounting
{
    sim::Tick cpuBusy = 0;
    std::uint64_t dispatches = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t messagesDelivered = 0;
    /** Messages dropped because their destination had terminated. */
    std::uint64_t messagesDroppedTerminated = 0;
};

class NodeKernel
{
  public:
    NodeKernel(Machine &machine, NodeId id);
    NodeKernel(const NodeKernel &) = delete;
    NodeKernel &operator=(const NodeKernel &) = delete;

    /** @{ identity and environment access */
    NodeId
    nodeId() const
    {
        return id;
    }

    Machine &
    machine()
    {
        return mach;
    }

    sim::Simulation &simulation();
    const MachineParams &params() const;
    /** @} */

    /**
     * Create a new light-weight process on this node. Creation is
     * allowed both from setup code and from running processes ("a
     * process can create other processes at any point of time").
     */
    Pid spawn(const std::string &name, ProcessFn fn, unsigned team = 0);

    /** Find an LWP by local id; nullptr if unknown. */
    Lwp *find(std::uint32_t lwp_id);
    const Lwp *find(std::uint32_t lwp_id) const;

    /** All LWPs ever created on this node (for reports/tests). */
    const std::vector<std::unique_ptr<Lwp>> &
    processes() const
    {
        return lwps;
    }

    /** The currently running LWP, if any. */
    Lwp *
    runningLwp()
    {
        return running;
    }

    /** @{ devices */
    SevenSegmentDisplay &
    display()
    {
        return displayDev;
    }

    SerialPort &
    serialPort()
    {
        return serialDev;
    }
    /** @} */

    /**
     * Instrument this node's operating system (the paper's future
     * work): @p probe fires on every dispatch/block/ready/yield/
     * deliver/send/exit. A non-zero @p per_event_cost charges the CPU
     * for each emitted event (software instrumentation of the
     * kernel); zero models an ideal hardware probe.
     */
    void
    setKernelProbe(KernelProbeFn probe, sim::Tick per_event_cost = 0)
    {
        kernProbe = std::move(probe);
        kernProbeCost = per_event_cost;
    }

    /** Events emitted through the kernel probe so far. */
    std::uint64_t
    kernelEventCount() const
    {
        return kernEvents;
    }

    /** @{ node-local clock (no global clock on SUPRENUM!) */
    void
    configureLocalClock(sim::TickDelta offset_ns, double drift_ppm)
    {
        nodeClockOffset = offset_ns;
        nodeClockDriftPpm = drift_ppm;
    }

    /** The node's own clock reading for the current simulated time. */
    sim::Tick localTime() const;
    /** @} */

    /** The software log-file written by log-file instrumentation. */
    const std::vector<SoftwareLogRecord> &
    softwareLog() const
    {
        return softLog;
    }

    /** Node memory accounting: reserve @p bytes; warns when the 8 MB
     *  node memory is exceeded. @return false on overcommit. */
    bool allocateMemory(std::uint64_t bytes, const char *what);

    std::uint64_t
    memoryUsed() const
    {
        return memUsed;
    }

    const NodeAccounting &
    accounting() const
    {
        return acct;
    }

    /** Multi-line state dump for deadlock diagnostics. */
    std::string stateDump() const;

    // ------------------------------------------------------------------
    // Fault-injection interface (used by faults::FaultInjector).
    // ------------------------------------------------------------------

    /**
     * Terminate @p lwp immediately, from outside the process (a
     * hardware fault, not a normal exit). Senders whose messages sit
     * unaccepted in the victim's inbox get their rendezvous completed
     * (connection reset); messages still in flight are dropped on
     * arrival by deliver(). @return false if already terminated.
     */
    bool killLwp(Lwp *lwp);

    /**
     * Revive a killed process: re-create its coroutine from the spawn
     * factory (the process restarts from its entry point) under the
     * same Pid and make it ready. Panics if @p lwp is not terminated.
     */
    void restartLwp(Lwp *lwp);

    /**
     * Freeze the dispatcher until @p until: no process is dispatched
     * while the node is stalled (a currently running process keeps
     * the CPU - scheduling is non-preemptive even for faults).
     */
    void
    stallUntil(sim::Tick until)
    {
        if (until > freezeUntil)
            freezeUntil = until;
    }

    // ------------------------------------------------------------------
    // Machine-internal interface (message transport).
    // ------------------------------------------------------------------

    /** A message arrived at this node for one of its LWPs. */
    void deliver(Message msg);

    /** The rendezvous acknowledgement for @p lwp_id's send arrived. */
    void ackArrived(std::uint32_t lwp_id);

    // ------------------------------------------------------------------
    // Scheduler internals, used by the awaitables in ProcessEnv.
    // ------------------------------------------------------------------

    /** Panic unless @p lwp is the currently running process. */
    void assertRunning(const Lwp &lwp, const char *op) const;

    void makeReady(Lwp *lwp);
    void blockRunning(Lwp *lwp, BlockReason reason);
    void yieldRunning(Lwp *lwp);
    void resumeRunning(Lwp *lwp);
    void beginSend(Lwp *lwp, Message msg);
    bool hasMatch(const Lwp &lwp, const MessageFilter &filter) const;
    Message acceptMatch(Lwp *lwp, const MessageFilter &filter);
    void emitDisplaySequence(Lwp *lwp, std::vector<std::uint8_t> patterns,
                             sim::Tick total_cost);
    void emitSerial(Lwp *lwp, std::uint64_t data, unsigned bits);
    void emitSoftwareLog(Lwp *lwp, std::uint16_t token,
                         std::uint32_t param);
    void sleepRunning(Lwp *lwp, sim::Tick duration);
    void waitOnFlag(Lwp *lwp, EventFlag &flag);

  private:
    void maybeScheduleDispatch();
    void dispatch();
    void accountState(Lwp *lwp, LwpState new_state);
    void onTerminated(Lwp *lwp);
    /** Fire the kernel probe (if any); returns its CPU cost. */
    sim::Tick probeKernelEvent(std::uint16_t token,
                               std::uint32_t param);

    Machine &mach;
    NodeId id;

    std::vector<std::unique_ptr<Lwp>> lwps;
    std::deque<Lwp *> readyQueue;
    Lwp *running = nullptr;
    bool dispatchPending = false;

    SevenSegmentDisplay displayDev;
    SerialPort serialDev;

    std::uint64_t memUsed = 0;
    bool memWarned = false;
    NodeAccounting acct;
    sim::Tick runningSince = 0;

    std::vector<SoftwareLogRecord> softLog;
    sim::TickDelta nodeClockOffset = 0;
    double nodeClockDriftPpm = 0.0;

    KernelProbeFn kernProbe;
    sim::Tick kernProbeCost = 0;
    std::uint64_t kernEvents = 0;
    /** Probe cost accumulated since the last dispatch; charged by
     *  delaying the next dispatched process (the instrumented kernel
     *  pays for its event output on the scheduling path). */
    sim::Tick pendingProbeCost = 0;
    /** Dispatcher freeze deadline set by stallUntil(); 0 = no stall. */
    sim::Tick freezeUntil = 0;
};

/**
 * Handle through which a process coroutine reaches its kernel. Passed
 * by value into the coroutine; all members are awaitables or cheap
 * queries.
 */
class ProcessEnv
{
  public:
    ProcessEnv(NodeKernel &kernel, Lwp &self) : kern(&kernel), lwp(&self)
    {
    }

    /** @{ identity */
    Pid
    pid() const
    {
        return lwp->pid;
    }

    NodeKernel &
    kernel() const
    {
        return *kern;
    }

    Lwp &
    self() const
    {
        return *lwp;
    }

    sim::Tick now() const;
    /** @} */

    // --- awaitables ----------------------------------------------------

    /** Consume CPU for @p duration; the CPU is *held* throughout
     *  (non-preemptive execution). */
    struct ComputeAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        sim::Tick duration;

        bool
        await_ready() const
        {
            return duration == 0;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->assertRunning(*lwp, "compute");
            auto *k = kern;
            auto *l = lwp;
            k->simulation().scheduleAfter(
                duration, [k, l] { k->resumeRunning(l); });
        }

        void
        await_resume()
        {
        }
    };

    ComputeAwaiter
    compute(sim::Tick duration) const
    {
        return {kern, lwp, duration};
    }

    /** Relinquish the processor deliberately (round-robin rotate). */
    struct YieldAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;

        bool
        await_ready() const
        {
            return false;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->yieldRunning(lwp);
        }

        void
        await_resume()
        {
        }
    };

    YieldAwaiter
    yield() const
    {
        return {kern, lwp};
    }

    /**
     * Rendezvous send: blocks until the destination process accepts
     * the message (is dispatched and executes a matching receive).
     */
    struct SendAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        Message msg;

        bool
        await_ready() const
        {
            return false;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->beginSend(lwp, std::move(msg));
        }

        void
        await_resume()
        {
        }
    };

    SendAwaiter
    send(Pid dst, std::uint32_t bytes, int tag,
         std::any payload = {}) const
    {
        Message m;
        m.dst = dst;
        m.bytes = bytes;
        m.tag = tag;
        m.payload = std::move(payload);
        return {kern, lwp, std::move(m)};
    }

    /** Selective receive; completes when a matching message has been
     *  accepted. Acceptance releases the sender's rendezvous. */
    struct ReceiveAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        MessageFilter filter;

        bool
        await_ready() const
        {
            kern->assertRunning(*lwp, "receive");
            return kern->hasMatch(*lwp, filter);
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            lwp->waitFilter = filter;
            kern->blockRunning(lwp, BlockReason::Receive);
        }

        Message
        await_resume()
        {
            return kern->acceptMatch(lwp, filter);
        }
    };

    ReceiveAwaiter
    receive(MessageFilter filter = anyMessage()) const
    {
        return {kern, lwp, std::move(filter)};
    }

    /** Timed sleep (block; CPU free for other processes). */
    struct SleepAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        sim::Tick duration;

        bool
        await_ready() const
        {
            return duration == 0;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->sleepRunning(lwp, duration);
        }

        void
        await_resume()
        {
        }
    };

    SleepAwaiter
    sleep(sim::Tick duration) const
    {
        return {kern, lwp, duration};
    }

    /** Wait on a team-shared EventFlag. */
    struct FlagAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        EventFlag *flag;

        bool
        await_ready() const
        {
            return false;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->waitOnFlag(lwp, *flag);
        }

        void
        await_resume()
        {
        }
    };

    FlagAwaiter
    wait(EventFlag &flag) const
    {
        return {kern, lwp, &flag};
    }

    /**
     * Drive a pattern sequence onto the seven segment display while
     * holding the CPU for @p total_cost. This is the device-level
     * primitive underneath hybrid_mon(); the encoding lives in the
     * hybrid library.
     */
    struct DisplayAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        std::vector<std::uint8_t> patterns;
        sim::Tick totalCost;

        bool
        await_ready() const
        {
            return false;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->emitDisplaySequence(lwp, std::move(patterns),
                                      totalCost);
        }

        void
        await_resume()
        {
        }
    };

    DisplayAwaiter
    emitDisplay(std::vector<std::uint8_t> patterns,
                sim::Tick total_cost) const
    {
        return {kern, lwp, std::move(patterns), total_cost};
    }

    /**
     * Output @p bits bits of @p data through the V.24 serial terminal
     * interface: a context switch plus the serial transmission time,
     * with the CPU held (the slow path rejected by the paper).
     */
    struct SerialAwaiter
    {
        NodeKernel *kern;
        Lwp *lwp;
        std::uint64_t data;
        unsigned bits;

        bool
        await_ready() const
        {
            return false;
        }

        void
        await_suspend(std::coroutine_handle<>)
        {
            kern->emitSerial(lwp, data, bits);
        }

        void
        await_resume()
        {
        }
    };

    SerialAwaiter
    emitSerial(std::uint64_t data, unsigned bits) const
    {
        return {kern, lwp, data, bits};
    }

  private:
    NodeKernel *kern;
    Lwp *lwp;
};

} // namespace suprenum
} // namespace supmon

#endif // SUPRENUM_KERNEL_HH
