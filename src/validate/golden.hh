/**
 * @file
 * Golden-trace regression support.
 *
 * sim::Simulation fires events at equal ticks in FIFO order, so a run
 * is fully described by its configuration plus seed: same config and
 * seed produce a bit-identical harvested trace. That makes traces
 * snapshot-testable: hash the canonical byte representation of every
 * event, store the hash (plus the event count) in a small text file
 * under tests/golden/, and fail any run whose trace diverges.
 *
 * Golden file format (one line, text):
 *
 *     <16 hex digits> <event count>
 *
 * Refresh with `tracecheck --scenario all --update-golden` after an
 * intentional behaviour change and commit the diff.
 */

#ifndef VALIDATE_GOLDEN_HH
#define VALIDATE_GOLDEN_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.hh"

namespace supmon
{
namespace validate
{

/** Digest of a trace: content hash plus event count. */
struct TraceDigest
{
    std::uint64_t hash = 0;
    std::uint64_t eventCount = 0;

    friend bool
    operator==(const TraceDigest &a, const TraceDigest &b)
    {
        return a.hash == b.hash && a.eventCount == b.eventCount;
    }
};

/**
 * FNV-1a (64 bit) over the canonical little-endian representation of
 * every event field (timestamp, token, param, stream, flags) -
 * independent of struct padding and host byte order.
 */
std::uint64_t traceHash(const std::vector<trace::TraceEvent> &events);

/** Digest of a trace (hash + count). */
TraceDigest digestOf(const std::vector<trace::TraceEvent> &events);

/** 16-digit lower-case hex rendering of a hash. */
std::string hashHex(std::uint64_t hash);

/** Read a golden file; nullopt if missing or malformed. */
std::optional<TraceDigest> loadGolden(const std::string &path);

/** Write a golden file. @return false on I/O failure. */
bool saveGolden(const std::string &path, const TraceDigest &digest);

} // namespace validate
} // namespace supmon

#endif // VALIDATE_GOLDEN_HH
