#include "validate/concurrent.hh"

#include "parallel/pool.hh"
#include "sim/logging.hh"

namespace supmon
{
namespace validate
{

std::vector<par::RunResult>
runScenariosConcurrent(const std::vector<const Scenario *> &scenarios,
                       unsigned jobs)
{
    // Silence warn()/inform() for the whole batch up front instead of
    // per-task QuietScopes: the scope's save/restore of the previous
    // value is not meaningful when scopes overlap across threads.
    const bool wasQuiet = sim::quiet();
    sim::setQuiet(true);
    std::vector<par::RunResult> results(scenarios.size());
    try {
        parallel::forEachIndex(
            jobs, scenarios.size(), [&](std::size_t i) {
                results[i] = par::runRayTracer(scenarios[i]->config);
            });
    } catch (...) {
        sim::setQuiet(wasQuiet);
        throw;
    }
    sim::setQuiet(wasQuiet);
    return results;
}

std::vector<par::RunResult>
runGoldenScenariosConcurrent(unsigned jobs)
{
    std::vector<const Scenario *> all;
    for (const Scenario &s : goldenScenarios())
        all.push_back(&s);
    return runScenariosConcurrent(all, jobs);
}

} // namespace validate
} // namespace supmon
