/**
 * @file
 * Trace-invariant checking (in the spirit of generic trace-analysis
 * monitors: the checks are first-class, pluggable analyses).
 *
 * The whole reproduction argues from harvested traces, so the traces
 * themselves must be trustworthy: globally valid timestamps, correctly
 * merged recorder streams, protocol-causal event sequences, conserved
 * message counts. A TraceValidator runs a set of invariant rules over
 * an evaluation trace and reports every violation with the name of the
 * rule that caught it, the event index, and a diagnostic message.
 *
 * Built-in rules:
 *  - stream-monotonic:   per-stream timestamp monotonicity;
 *  - merge-order:        global timestamp order of the CEC merge;
 *  - protocol-causality: send/work/result matching of the ray tracer
 *                        protocol by job id (needs the evJobSend
 *                        metadata, RunConfig::instrumentJobSend);
 *  - conservation:       jobs sent == worked == results received,
 *                        master/servant start/done pairing, and
 *                        (optionally) ground-truth count matching;
 *  - token-dictionary:   every token is defined in a dictionary;
 *  - lwp-state-machine:  kernel-probe events follow the legal LWP
 *                        life cycle (ready -> running -> blocked);
 *  - activity-sanity:    state intervals lie inside the trace window
 *                        and utilizations stay within [0, 1].
 */

#ifndef VALIDATE_RULES_HH
#define VALIDATE_RULES_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "faults/injector.hh"
#include "trace/dictionary.hh"
#include "trace/event.hh"

namespace supmon
{
namespace validate
{

/** One invariant violation found in a trace. */
struct Violation
{
    /** Name of the rule that detected the violation. */
    std::string rule;
    /** Index of the offending event in the trace (or the trace size
     *  for whole-trace violations such as count mismatches). */
    std::size_t eventIndex = 0;
    std::string message;
};

/** Render violations as a human-readable multi-line report. */
std::string formatViolations(const std::vector<Violation> &violations);

/**
 * An invariant rule. Rules are stateless between validate() calls;
 * check() appends one Violation per finding (capped by the validator).
 */
class Rule
{
  public:
    virtual ~Rule() = default;

    /** Stable rule name used in diagnostics. */
    virtual const char *name() const = 0;

    virtual void check(const std::vector<trace::TraceEvent> &events,
                       std::vector<Violation> &out) const = 0;
};

/** Per-stream timestamps must never decrease. */
class StreamMonotonicRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "stream-monotonic";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;
};

/** The merged global trace must be in non-decreasing timestamp
 *  order (the CEC merge invariant; ties break by recorder, so the
 *  stream id is not required to tie-break). */
class MergeOrderRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "merge-order";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;
};

/**
 * Ray tracer protocol causality, matched by job id:
 *  - a job is sent at most once (evJobSend) and worked at most once
 *    (evWorkBegin);
 *  - Work Begin for a job must follow its Job Send (when the send
 *    metadata is instrumented);
 *  - Send Results / Receive Results for a job must follow its Work
 *    Begin.
 * Traces without ray tracer protocol tokens pass trivially.
 */
class ProtocolCausalityRule : public Rule
{
  public:
    /**
     * @param allow_retries accept the fault-tolerant protocol's
     *        resends: a job may be sent and worked more than once
     *        (results beyond the first are suppressed, which the
     *        RecoveryConsistencyRule checks). Ordering constraints
     *        (work after first send, receive after first work) still
     *        apply.
     */
    explicit ProtocolCausalityRule(bool allow_retries = false)
        : allowRetries(allow_retries)
    {
    }

    const char *
    name() const override
    {
        return "protocol-causality";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;

  private:
    bool allowRetries;
};

/** Ground-truth counts a trace can be checked against (all
 *  optional; unset members are not checked). */
struct ConservationExpectations
{
    /** Jobs the master actually sent (host-side bookkeeping). */
    std::optional<std::uint64_t> jobsSent;
    /** Results the master actually received. */
    std::optional<std::uint64_t> resultsReceived;
    /** Pixels of the image (requested == written). */
    std::optional<std::uint64_t> pixelsWritten;
};

/**
 * Conservation laws over the whole trace: everything sent is worked,
 * everything worked is received, every servant that starts finishes,
 * the master's start/done markers pair up, and the Send Jobs /
 * Write Pixels Begin/End markers balance (no activity left open).
 * With expectations set, the trace counts are additionally checked
 * against the ground truth.
 */
class ConservationRule : public Rule
{
  public:
    explicit ConservationRule(ConservationExpectations expect = {})
        : expected(expect)
    {
    }

    const char *
    name() const override
    {
        return "conservation";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;

  private:
    ConservationExpectations expected;
};

/** Every token in the trace must be defined in the dictionary. */
class TokenDictionaryRule : public Rule
{
  public:
    explicit TokenDictionaryRule(trace::EventDictionary dictionary)
        : dict(std::move(dictionary))
    {
    }

    const char *
    name() const override
    {
        return "token-dictionary";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;

  private:
    trace::EventDictionary dict;
};

/**
 * Kernel-probe events (token class 7) must describe a legal LWP life
 * cycle per stream (= node): only a ready process is dispatched, only
 * the running process blocks/yields/sends/exits, and nothing happens
 * to a terminated process. Traces without kernel tokens pass.
 */
class LwpStateRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "lwp-state-machine";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;
};

/**
 * Activity-level sanity: every state interval derived from the trace
 * lies inside the trace window with a non-negative duration, and the
 * per-stream busy time never exceeds the window (utilization <= 1).
 */
class ActivitySanityRule : public Rule
{
  public:
    explicit ActivitySanityRule(trace::EventDictionary dictionary)
        : dict(std::move(dictionary))
    {
    }

    const char *
    name() const override
    {
        return "activity-sanity";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;

  private:
    trace::EventDictionary dict;
};

/**
 * Every fault the injector reports must be observed in the trace: the
 * per-kind counts of the class-4 evInject* tokens (emitted by the
 * application's fault daemon) must equal the injector's own counters,
 * and the checksum-failure discards observed at the receivers (Fault
 * Corrupt Discarded, Servant Corrupt Job) must not exceed the number
 * of messages the injector corrupted. This is the "recovery
 * observability" contract - a fault that the trace cannot show might
 * as well not have been monitored.
 */
class FaultObservationRule : public Rule
{
  public:
    explicit FaultObservationRule(faults::FaultStats expect)
        : expected(expect)
    {
    }

    const char *
    name() const override
    {
        return "fault-observation";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;

  private:
    faults::FaultStats expected;
};

/**
 * Consistency of the fault-tolerant master's recovery actions:
 *  - a job's results are accepted (Receive Results) at most once -
 *    duplicates must be suppressed, never processed;
 *  - every Duplicate Result marker refers to a job whose results were
 *    accepted earlier in the trace;
 *  - every Job Reassigned marker is accompanied by a Retry marker for
 *    the same job at the same instant;
 *  - every Retry has a recorded cause: a prior Fault Timeout for the
 *    same job, or a prior Fault Servant Dead (orphaned jobs are
 *    requeued without individual timeout markers);
 *  - a servant is declared dead at most once (dead stays dead).
 */
class RecoveryConsistencyRule : public Rule
{
  public:
    const char *
    name() const override
    {
        return "recovery-consistency";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;
};

/**
 * Coverage conservation under faults: if the master finished
 * (evMasterDone present), every job it ever sent (evJobSend metadata)
 * had its results accepted exactly once, and the Write Pixels events
 * cover the expected pixel count exactly - reassigned jobs conserve
 * coverage, they must not lose or duplicate pixels.
 */
class JobCoverageRule : public Rule
{
  public:
    explicit JobCoverageRule(
        std::optional<std::uint64_t> expected_pixels = std::nullopt)
        : expectedPixels(expected_pixels)
    {
    }

    const char *
    name() const override
    {
        return "job-coverage";
    }

    void check(const std::vector<trace::TraceEvent> &events,
               std::vector<Violation> &out) const override;

  private:
    std::optional<std::uint64_t> expectedPixels;
};

/**
 * Runs a pluggable set of invariant rules over an evaluation trace.
 *
 * @code
 * auto validator = validate::TraceValidator::forRayTracer();
 * const auto violations = validator.validate(result.events);
 * if (!violations.empty())
 *     std::puts(validate::formatViolations(violations).c_str());
 * @endcode
 */
class TraceValidator
{
  public:
    /** Append a rule; rules run in insertion order. */
    void
    addRule(std::unique_ptr<Rule> rule)
    {
        rules.push_back(std::move(rule));
    }

    /** Generic rule set: order, causality, conservation, LWP
     *  legality. Applicable to any harvested trace. */
    static TraceValidator standard();

    /**
     * Rule set for parallel ray tracer traces: standard() plus the
     * ray tracer token dictionary and activity sanity, optionally
     * pinned to ground-truth counts.
     */
    static TraceValidator forRayTracer(
        ConservationExpectations expect = {});

    /**
     * Rule set for fault-injected runs. Conservation and the LWP
     * state machine are replaced (their healthy-run assumptions -
     * every job worked exactly once, processes only exit themselves -
     * are exactly what faults break) by the fault-aware rules:
     * retry-tolerant causality, fault observation, recovery
     * consistency and coverage conservation.
     */
    static TraceValidator forFaultRun(
        faults::FaultStats expect_faults,
        std::optional<std::uint64_t> expected_pixels = std::nullopt);

    /** Run all rules; returns every violation found (per rule capped
     *  at maxViolationsPerRule to keep reports readable). */
    std::vector<Violation> validate(
        const std::vector<trace::TraceEvent> &events) const;

    std::size_t
    ruleCount() const
    {
        return rules.size();
    }

    /** Cap on recorded violations per rule. */
    static constexpr std::size_t maxViolationsPerRule = 64;

  private:
    std::vector<std::unique_ptr<Rule>> rules;
};

} // namespace validate
} // namespace supmon

#endif // VALIDATE_RULES_HH
