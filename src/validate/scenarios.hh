/**
 * @file
 * Canonical golden-trace scenarios.
 *
 * Each scenario is a small, fast, fully deterministic ray tracer run
 * whose harvested trace is regression-locked by a golden digest under
 * tests/golden/ (see golden.hh). The three defaults mirror the
 * paper's measurement figures:
 *
 *  - fig07-mailbox:  version 1 on two processors (Figure 7's mailbox
 *                    synchronization window);
 *  - fig09-agents:   version 2 with communication agents (Figure 9);
 *  - fig10-versions: the tuned version 4 (the end point of Figure
 *                    10's tuning story).
 *
 * All scenarios instrument the per-job send metadata so the
 * protocol-causality rule has send/work/result chains to match.
 */

#ifndef VALIDATE_SCENARIOS_HH
#define VALIDATE_SCENARIOS_HH

#include <string>
#include <vector>

#include "partracer/runner.hh"
#include "validate/rules.hh"

namespace supmon
{
namespace validate
{

struct Scenario
{
    std::string name;
    std::string description;
    par::RunConfig config;

    /** Golden file name: <name>.golden . */
    std::string
    goldenFileName() const
    {
        return name + ".golden";
    }
};

/** The checked-in golden scenarios, in stable order. */
const std::vector<Scenario> &goldenScenarios();

/** Find a scenario by name; nullptr if unknown. */
const Scenario *findScenario(const std::string &name);

/** Run a scenario (quietly) and return the full result. */
par::RunResult runScenario(const Scenario &scenario);

/** Conservation expectations pinned to a run's ground truth. */
ConservationExpectations expectationsOf(const par::RunResult &result);

/**
 * Validate a finished run's trace with the full ray tracer rule set,
 * pinned to the run's own ground-truth counters.
 */
std::vector<Violation> validateRun(const par::RunResult &result);

} // namespace validate
} // namespace supmon

#endif // VALIDATE_SCENARIOS_HH
