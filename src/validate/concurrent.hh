/**
 * @file
 * Concurrent multi-scenario execution: run several golden scenarios
 * (or benchmark workloads) on a worker pool, one simulator instance
 * per task, and return the results in input order.
 *
 * Each par::runRayTracer() call is a self-contained deterministic
 * event-loop simulation — the only process-global it touches is the
 * (atomic) quiet flag — so scenario runs are embarrassingly parallel:
 * a concurrent batch produces byte-identical traces to running the
 * same scenarios serially. tests/parallel/test_concurrent_scenarios
 * .cpp locks that with validate::digestOf.
 */

#ifndef VALIDATE_CONCURRENT_HH
#define VALIDATE_CONCURRENT_HH

#include <vector>

#include "partracer/runner.hh"
#include "validate/scenarios.hh"

namespace supmon
{
namespace validate
{

/**
 * Run every scenario in @p scenarios on up to @p jobs threads
 * (quietly, like runScenario). Results land in input order;
 * result[i] belongs to scenarios[i].
 */
std::vector<par::RunResult> runScenariosConcurrent(
    const std::vector<const Scenario *> &scenarios, unsigned jobs);

/** Convenience: all golden scenarios, concurrently. */
std::vector<par::RunResult> runGoldenScenariosConcurrent(
    unsigned jobs);

} // namespace validate
} // namespace supmon

#endif // VALIDATE_CONCURRENT_HH
