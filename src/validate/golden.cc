#include "validate/golden.hh"

#include <cinttypes>
#include <cstdio>
#include <memory>

namespace supmon
{
namespace validate
{

namespace
{

constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnvPrime = 0x00000100000001b3ull;

void
mix(std::uint64_t &hash, std::uint64_t value, unsigned bytes)
{
    for (unsigned i = 0; i < bytes; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= fnvPrime;
    }
}

struct FileCloser
{
    void
    operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using File = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::uint64_t
traceHash(const std::vector<trace::TraceEvent> &events)
{
    std::uint64_t hash = fnvOffset;
    for (const auto &ev : events) {
        mix(hash, ev.timestamp, 8);
        mix(hash, ev.token, 2);
        mix(hash, ev.param, 4);
        mix(hash, ev.stream, 4);
        mix(hash, ev.flags, 1);
    }
    return hash;
}

TraceDigest
digestOf(const std::vector<trace::TraceEvent> &events)
{
    return TraceDigest{traceHash(events), events.size()};
}

std::string
hashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, hash);
    return buf;
}

std::optional<TraceDigest>
loadGolden(const std::string &path)
{
    File f(std::fopen(path.c_str(), "r"));
    if (!f)
        return std::nullopt;
    TraceDigest digest;
    if (std::fscanf(f.get(), "%16" SCNx64 " %" SCNu64, &digest.hash,
                    &digest.eventCount) != 2)
        return std::nullopt;
    return digest;
}

bool
saveGolden(const std::string &path, const TraceDigest &digest)
{
    File f(std::fopen(path.c_str(), "w"));
    if (!f)
        return false;
    return std::fprintf(f.get(), "%s %" PRIu64 "\n",
                        hashHex(digest.hash).c_str(),
                        digest.eventCount) > 0;
}

} // namespace validate
} // namespace supmon
