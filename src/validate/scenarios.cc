#include "validate/scenarios.hh"

#include "sim/logging.hh"

namespace supmon
{
namespace validate
{

namespace
{

par::RunConfig
baseConfig(par::Version version, unsigned servants, unsigned edge)
{
    par::RunConfig cfg;
    cfg.version = version;
    cfg.numServants = servants;
    cfg.imageWidth = edge;
    cfg.imageHeight = edge;
    cfg.applyVersionDefaults();
    // The per-job send metadata gives the causality rule complete
    // send -> work -> result chains to match.
    cfg.instrumentJobSend = true;
    return cfg;
}

std::vector<Scenario>
makeScenarios()
{
    std::vector<Scenario> list;
    {
        Scenario s;
        s.name = "fig07-mailbox";
        s.description = "version 1, mailbox communication on two "
                        "processors (Figure 7)";
        s.config = baseConfig(par::Version::V1Mailbox, 1, 16);
        s.config.writeBatchMin = 3;
        list.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "fig09-agents";
        s.description = "version 2, communication agents forward "
                        "master->servant (Figure 9)";
        s.config = baseConfig(par::Version::V2AgentsForward, 3, 16);
        list.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "fig10-versions";
        s.description = "version 4, tuned bundle and queue constant "
                        "(Figure 10 end point)";
        s.config = baseConfig(par::Version::V4Tuned, 7, 24);
        list.push_back(std::move(s));
    }
    {
        Scenario s;
        s.name = "faulty-moderate";
        s.description = "version 4 under fault injection: one servant "
                        "killed mid-run, 1% bus message loss; the "
                        "fault-tolerant protocol completes the image";
        s.config = baseConfig(par::Version::V4Tuned, 7, 32);
        s.config.faultTolerant = true;
        // Smaller bundles than the throughput-tuned V4 default: the
        // nodes schedule non-preemptively, so the bundle compute time
        // is the latency floor of every liveness/ack signal. 16 pixels
        // (~85 ms) keeps heartbeats and results flowing well inside
        // the recovery timeouts; 100-pixel bundles (~530 ms) would
        // starve them into false servant deaths.
        s.config.bundleSize = 16;
        s.config.pixelQueueLimit =
            static_cast<std::size_t>(s.config.bundleSize) *
                s.config.windowSize * s.config.numServants +
            s.config.bundleSize;
        // Reassignments and resends bypass the window flow control,
        // so after the kill the surviving servants briefly compute
        // back-to-back bundles; stretch both timeouts so that burst
        // neither re-expires healthy jobs nor fakes more deaths.
        s.config.ackTimeout = sim::milliseconds(1200);
        s.config.heartbeatTimeout = sim::milliseconds(1600);
        s.config.faultPlanText = "kill at=1800ms servant=2\n"
                                 "drop p=0.01\n";
        list.push_back(std::move(s));
    }
    return list;
}

} // namespace

const std::vector<Scenario> &
goldenScenarios()
{
    static const std::vector<Scenario> scenarios = makeScenarios();
    return scenarios;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const auto &s : goldenScenarios()) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

par::RunResult
runScenario(const Scenario &scenario)
{
    sim::QuietScope quiet;
    return par::runRayTracer(scenario.config);
}

ConservationExpectations
expectationsOf(const par::RunResult &result)
{
    ConservationExpectations expect;
    expect.jobsSent = result.jobsSent;
    expect.resultsReceived = result.resultsReceived;
    expect.pixelsWritten = result.config.totalPixels();
    return expect;
}

std::vector<Violation>
validateRun(const par::RunResult &result)
{
    // Fault-injected / fault-tolerant runs break the healthy-run
    // invariants on purpose (resends, external kills); they get the
    // fault-aware rule set instead.
    if (result.config.faultTolerant ||
        !result.config.faultPlanText.empty()) {
        return TraceValidator::forFaultRun(
                   result.faults, result.config.totalPixels())
            .validate(result.events);
    }
    return TraceValidator::forRayTracer(expectationsOf(result))
        .validate(result.events);
}

} // namespace validate
} // namespace supmon
