#include "validate/rules.hh"

#include <algorithm>
#include <map>
#include <set>

#include "partracer/events.hh"
#include "sim/logging.hh"
#include "suprenum/kernel_events.hh"
#include "trace/activity.hh"

namespace supmon
{
namespace validate
{

std::string
formatViolations(const std::vector<Violation> &violations)
{
    std::string out;
    for (const auto &v : violations) {
        out += sim::strprintf("[%s] event %zu: %s\n", v.rule.c_str(),
                              v.eventIndex, v.message.c_str());
    }
    return out;
}

namespace
{

void
report(std::vector<Violation> &out, const Rule &rule,
       std::size_t index, std::string message)
{
    out.push_back(Violation{rule.name(), index, std::move(message)});
}

} // namespace

// ---------------------------------------------------------------------
// stream-monotonic
// ---------------------------------------------------------------------

void
StreamMonotonicRule::check(const std::vector<trace::TraceEvent> &events,
                           std::vector<Violation> &out) const
{
    std::map<unsigned, std::pair<sim::Tick, std::size_t>> last;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        auto it = last.find(ev.stream);
        if (it != last.end() && ev.timestamp < it->second.first) {
            report(out, *this, i,
                   sim::strprintf(
                       "stream %u time stamp %llu is before the "
                       "stream's previous event %zu at %llu",
                       ev.stream,
                       static_cast<unsigned long long>(ev.timestamp),
                       it->second.second,
                       static_cast<unsigned long long>(
                           it->second.first)));
        }
        last[ev.stream] = {ev.timestamp, i};
    }
}

// ---------------------------------------------------------------------
// merge-order
// ---------------------------------------------------------------------

void
MergeOrderRule::check(const std::vector<trace::TraceEvent> &events,
                      std::vector<Violation> &out) const
{
    for (std::size_t i = 1; i < events.size(); ++i) {
        if (events[i].timestamp < events[i - 1].timestamp) {
            report(out, *this, i,
                   sim::strprintf(
                       "global merge order broken: time stamp %llu "
                       "after %llu",
                       static_cast<unsigned long long>(
                           events[i].timestamp),
                       static_cast<unsigned long long>(
                           events[i - 1].timestamp)));
        }
    }
}

// ---------------------------------------------------------------------
// protocol-causality
// ---------------------------------------------------------------------

void
ProtocolCausalityRule::check(
    const std::vector<trace::TraceEvent> &events,
    std::vector<Violation> &out) const
{
    struct Seen
    {
        sim::Tick at = 0;
        std::size_t index = 0;
    };
    std::map<std::uint32_t, Seen> sent;     // evJobSend
    std::map<std::uint32_t, Seen> worked;   // evWorkBegin
    std::map<std::uint32_t, Seen> returned; // evSendResultsBegin

    // Pre-pass: first send of every job. Work events are checked
    // against this rather than the streaming map, so a send that is
    // merely merged later than its work still counts as "sent" - the
    // timestamps decide the verdict, not the merge position.
    std::map<std::uint32_t, Seen> first_send;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (events[i].token == par::evJobSend &&
            !first_send.count(events[i].param))
            first_send[events[i].param] = {events[i].timestamp, i};
    }

    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        const std::uint32_t job = ev.param;
        switch (ev.token) {
          case par::evJobSend: {
            if (sent.count(job) && !allowRetries) {
                report(out, *this, i,
                       sim::strprintf("job %u sent twice (first at "
                                      "event %zu)",
                                      job, sent[job].index));
            }
            sent[job] = {ev.timestamp, i};
            break;
          }
          case par::evWorkBegin: {
            if (worked.count(job)) {
                if (!allowRetries) {
                    report(out, *this, i,
                           sim::strprintf("job %u worked twice (first "
                                          "at event %zu)",
                                          job, worked[job].index));
                }
                break; // keep the first Work Begin as the reference
            } else if (!first_send.empty() &&
                       !first_send.count(job)) {
                report(out, *this, i,
                       sim::strprintf("job %u worked but never sent",
                                      job));
            } else if (first_send.count(job) &&
                       first_send[job].at > ev.timestamp) {
                report(out, *this, i,
                       sim::strprintf(
                           "job %u Work Begin at %llu precedes its "
                           "Job Send at %llu",
                           job,
                           static_cast<unsigned long long>(
                               ev.timestamp),
                           static_cast<unsigned long long>(
                               first_send[job].at)));
            }
            worked[job] = {ev.timestamp, i};
            break;
          }
          case par::evSendResultsBegin: {
            if (!worked.count(job)) {
                report(out, *this, i,
                       sim::strprintf("results of job %u sent before "
                                      "any Work Begin",
                                      job));
            } else if (worked[job].at > ev.timestamp) {
                report(out, *this, i,
                       sim::strprintf(
                           "job %u Send Results at %llu precedes its "
                           "Work Begin at %llu",
                           job,
                           static_cast<unsigned long long>(
                               ev.timestamp),
                           static_cast<unsigned long long>(
                               worked[job].at)));
            }
            returned[job] = {ev.timestamp, i};
            break;
          }
          case par::evReceiveResultsBegin: {
            if (worked.empty())
                break; // no servant stream in this trace slice
            if (!worked.count(job)) {
                report(out, *this, i,
                       sim::strprintf("results of job %u received "
                                      "but the job was never worked",
                                      job));
            } else if (worked[job].at > ev.timestamp) {
                report(out, *this, i,
                       sim::strprintf(
                           "job %u Receive Results at %llu precedes "
                           "its Work Begin at %llu",
                           job,
                           static_cast<unsigned long long>(
                               ev.timestamp),
                           static_cast<unsigned long long>(
                               worked[job].at)));
            } else if (returned.count(job) &&
                       returned[job].at > ev.timestamp) {
                report(out, *this, i,
                       sim::strprintf(
                           "job %u Receive Results at %llu precedes "
                           "its Send Results at %llu",
                           job,
                           static_cast<unsigned long long>(
                               ev.timestamp),
                           static_cast<unsigned long long>(
                               returned[job].at)));
            }
            break;
          }
          default:
            break;
        }
    }
}

// ---------------------------------------------------------------------
// conservation
// ---------------------------------------------------------------------

void
ConservationRule::check(const std::vector<trace::TraceEvent> &events,
                        std::vector<Violation> &out) const
{
    std::uint64_t job_sends = 0;
    std::uint64_t work_begins = 0;
    std::uint64_t results_received = 0;
    std::uint64_t master_starts = 0;
    std::uint64_t master_dones = 0;
    std::uint64_t servant_starts = 0;
    std::uint64_t servant_dones = 0;
    std::uint64_t pixels_written = 0;
    std::uint64_t send_jobs_begins = 0;
    std::uint64_t send_jobs_ends = 0;
    std::uint64_t write_begins = 0;
    std::uint64_t write_ends = 0;

    for (const auto &ev : events) {
        switch (ev.token) {
          case par::evSendJobsBegin:
            ++send_jobs_begins;
            break;
          case par::evSendJobsEnd:
            ++send_jobs_ends;
            break;
          case par::evWritePixelsEnd:
            ++write_ends;
            break;
          case par::evJobSend:
            ++job_sends;
            break;
          case par::evWorkBegin:
            ++work_begins;
            break;
          case par::evReceiveResultsBegin:
            ++results_received;
            break;
          case par::evMasterStart:
            ++master_starts;
            break;
          case par::evMasterDone:
            ++master_dones;
            break;
          case par::evServantStart:
            ++servant_starts;
            break;
          case par::evServantDone:
            ++servant_dones;
            break;
          case par::evWritePixelsBegin:
            ++write_begins;
            pixels_written += ev.param;
            break;
          default:
            break;
        }
    }

    const std::size_t tail = events.size();
    if ((master_starts != 0 || master_dones != 0) &&
        (master_starts != 1 || master_dones != 1)) {
        report(out, *this, tail,
               sim::strprintf("expected exactly one Master Start and "
                              "one Master Done, found %llu / %llu",
                              static_cast<unsigned long long>(
                                  master_starts),
                              static_cast<unsigned long long>(
                                  master_dones)));
    }
    if (servant_starts != servant_dones) {
        report(out, *this, tail,
               sim::strprintf("%llu servants started but %llu "
                              "finished",
                              static_cast<unsigned long long>(
                                  servant_starts),
                              static_cast<unsigned long long>(
                                  servant_dones)));
    }
    if (send_jobs_begins != send_jobs_ends) {
        report(out, *this, tail,
               sim::strprintf("%llu Send Jobs Begin but %llu Send "
                              "Jobs End markers - an activity was "
                              "left open",
                              static_cast<unsigned long long>(
                                  send_jobs_begins),
                              static_cast<unsigned long long>(
                                  send_jobs_ends)));
    }
    if (write_begins != write_ends) {
        report(out, *this, tail,
               sim::strprintf("%llu Write Pixels Begin but %llu "
                              "Write Pixels End markers - an "
                              "activity was left open",
                              static_cast<unsigned long long>(
                                  write_begins),
                              static_cast<unsigned long long>(
                                  write_ends)));
    }
    if (job_sends > 0 && job_sends != work_begins) {
        report(out, *this, tail,
               sim::strprintf("%llu jobs sent but %llu worked",
                              static_cast<unsigned long long>(
                                  job_sends),
                              static_cast<unsigned long long>(
                                  work_begins)));
    }
    if (work_begins > 0 && results_received > 0 &&
        work_begins != results_received) {
        report(out, *this, tail,
               sim::strprintf("%llu jobs worked but %llu results "
                              "received",
                              static_cast<unsigned long long>(
                                  work_begins),
                              static_cast<unsigned long long>(
                                  results_received)));
    }

    if (expected.jobsSent && work_begins != *expected.jobsSent) {
        report(out, *this, tail,
               sim::strprintf("ground truth sent %llu jobs but the "
                              "trace works %llu",
                              static_cast<unsigned long long>(
                                  *expected.jobsSent),
                              static_cast<unsigned long long>(
                                  work_begins)));
    }
    if (expected.resultsReceived &&
        results_received != *expected.resultsReceived) {
        report(out, *this, tail,
               sim::strprintf("ground truth received %llu results "
                              "but the trace shows %llu",
                              static_cast<unsigned long long>(
                                  *expected.resultsReceived),
                              static_cast<unsigned long long>(
                                  results_received)));
    }
    if (expected.pixelsWritten &&
        pixels_written != *expected.pixelsWritten) {
        report(out, *this, tail,
               sim::strprintf("image has %llu pixels but the trace "
                              "writes %llu",
                              static_cast<unsigned long long>(
                                  *expected.pixelsWritten),
                              static_cast<unsigned long long>(
                                  pixels_written)));
    }
}

// ---------------------------------------------------------------------
// token-dictionary
// ---------------------------------------------------------------------

void
TokenDictionaryRule::check(const std::vector<trace::TraceEvent> &events,
                           std::vector<Violation> &out) const
{
    std::set<std::uint16_t> reported;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const std::uint16_t token = events[i].token;
        if (dict.find(token) || reported.count(token))
            continue;
        reported.insert(token);
        report(out, *this, i,
               sim::strprintf("token 0x%04x is not defined in the "
                              "dictionary",
                              token));
    }
}

// ---------------------------------------------------------------------
// lwp-state-machine
// ---------------------------------------------------------------------

void
LwpStateRule::check(const std::vector<trace::TraceEvent> &events,
                    std::vector<Violation> &out) const
{
    enum class S
    {
        Ready,
        Running,
        Blocked,
        Terminated,
    };

    struct Node
    {
        std::map<std::uint32_t, S> lwps;
        std::optional<std::uint32_t> running;
    };
    std::map<unsigned, Node> nodes;

    auto running_is = [&](Node &node, std::uint32_t lwp) {
        return node.running && *node.running == lwp;
    };

    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        if ((ev.token >> 8) != 7)
            continue; // not a kernel-class token
        Node &node = nodes[ev.stream];
        switch (ev.token) {
          case suprenum::evKernReady: {
            const std::uint32_t lwp = ev.param;
            auto it = node.lwps.find(lwp);
            if (it != node.lwps.end() && it->second == S::Terminated) {
                report(out, *this, i,
                       sim::strprintf("terminated process %u made "
                                      "ready",
                                      lwp));
            } else if (running_is(node, lwp)) {
                report(out, *this, i,
                       sim::strprintf("running process %u made ready "
                                      "without blocking or yielding",
                                      lwp));
            }
            node.lwps[lwp] = S::Ready;
            break;
          }
          case suprenum::evKernDispatch: {
            const std::uint32_t lwp = ev.param;
            if (node.running) {
                report(out, *this, i,
                       sim::strprintf(
                           "process %u dispatched while process %u "
                           "is still running (no time slicing!)",
                           lwp, *node.running));
            }
            auto it = node.lwps.find(lwp);
            if (it == node.lwps.end() || it->second != S::Ready) {
                report(out, *this, i,
                       sim::strprintf("process %u dispatched but was "
                                      "not ready",
                                      lwp));
            }
            node.lwps[lwp] = S::Running;
            node.running = lwp;
            break;
          }
          case suprenum::evKernBlock: {
            const std::uint32_t lwp = ev.param >> 8;
            if (!running_is(node, lwp)) {
                report(out, *this, i,
                       sim::strprintf("process %u blocked but is not "
                                      "the running process",
                                      lwp));
            }
            node.lwps[lwp] = S::Blocked;
            if (running_is(node, lwp))
                node.running.reset();
            break;
          }
          case suprenum::evKernYield: {
            const std::uint32_t lwp = ev.param;
            if (!running_is(node, lwp)) {
                report(out, *this, i,
                       sim::strprintf("process %u yielded but is not "
                                      "the running process",
                                      lwp));
            }
            node.lwps[lwp] = S::Ready;
            if (running_is(node, lwp))
                node.running.reset();
            break;
          }
          case suprenum::evKernSend: {
            const std::uint32_t lwp = ev.param;
            if (!running_is(node, lwp)) {
                report(out, *this, i,
                       sim::strprintf("process %u sent a message but "
                                      "is not the running process",
                                      lwp));
            }
            break;
          }
          case suprenum::evKernDeliver: {
            const std::uint32_t lwp = ev.param;
            auto it = node.lwps.find(lwp);
            if (it != node.lwps.end() && it->second == S::Terminated) {
                report(out, *this, i,
                       sim::strprintf("message delivered to "
                                      "terminated process %u",
                                      lwp));
            }
            break;
          }
          case suprenum::evKernDrop:
            // The legal outcome for a terminated destination: the
            // kernel drops the message at delivery (and says so).
            break;
          case suprenum::evKernExit: {
            const std::uint32_t lwp = ev.param;
            auto it = node.lwps.find(lwp);
            if (it != node.lwps.end() && it->second == S::Terminated) {
                report(out, *this, i,
                       sim::strprintf("process %u exited twice", lwp));
            }
            if (node.running && *node.running != lwp) {
                report(out, *this, i,
                       sim::strprintf("process %u exited while "
                                      "process %u is running",
                                      lwp, *node.running));
            }
            if (running_is(node, lwp))
                node.running.reset();
            node.lwps[lwp] = S::Terminated;
            break;
          }
          default:
            report(out, *this, i,
                   sim::strprintf("unknown kernel token 0x%04x",
                                  ev.token));
            break;
        }
    }
}

// ---------------------------------------------------------------------
// activity-sanity
// ---------------------------------------------------------------------

void
ActivitySanityRule::check(const std::vector<trace::TraceEvent> &events,
                          std::vector<Violation> &out) const
{
    if (events.empty())
        return;
    const auto activity = trace::ActivityMap::build(events, dict);
    const sim::Tick begin = activity.traceBegin();
    const sim::Tick end = activity.traceEnd();
    const std::size_t tail = events.size();

    std::map<unsigned, sim::Tick> busy;
    for (const auto &iv : activity.intervals()) {
        if (iv.end < iv.begin) {
            report(out, *this, tail,
                   sim::strprintf("stream %u state '%s' has negative "
                                  "duration",
                                  iv.stream, iv.state.c_str()));
            continue;
        }
        if (iv.begin < begin || iv.end > end) {
            report(out, *this, tail,
                   sim::strprintf("stream %u state '%s' [%llu, %llu) "
                                  "leaves the trace window",
                                  iv.stream, iv.state.c_str(),
                                  static_cast<unsigned long long>(
                                      iv.begin),
                                  static_cast<unsigned long long>(
                                      iv.end)));
        }
        busy[iv.stream] += iv.duration();
    }
    const sim::Tick window = end - begin;
    for (const auto &[stream, total] : busy) {
        if (total > window) {
            report(out, *this, tail,
                   sim::strprintf(
                       "stream %u accumulates %llu ns of state time "
                       "in a %llu ns window (utilization > 1)",
                       stream,
                       static_cast<unsigned long long>(total),
                       static_cast<unsigned long long>(window)));
        }
    }
}

// ---------------------------------------------------------------------
// fault-observation
// ---------------------------------------------------------------------

void
FaultObservationRule::check(const std::vector<trace::TraceEvent> &events,
                            std::vector<Violation> &out) const
{
    std::uint64_t kills = 0, crashes = 0, restarts = 0, drops = 0;
    std::uint64_t corrupts = 0, delays = 0, stalls = 0;
    std::uint64_t corrupt_discards = 0;
    for (const auto &ev : events) {
        switch (ev.token) {
          case par::evFaultCorruptDiscarded:
          case par::evServantCorruptJob:
            ++corrupt_discards;
            break;
          case par::evInjectKill:
            ++kills;
            break;
          case par::evInjectCrash:
            ++crashes;
            break;
          case par::evInjectRestart:
            ++restarts;
            break;
          case par::evInjectDrop:
            ++drops;
            break;
          case par::evInjectCorrupt:
            ++corrupts;
            break;
          case par::evInjectDelay:
            ++delays;
            break;
          case par::evInjectStall:
            ++stalls;
            break;
          default:
            break;
        }
    }

    const std::size_t tail = events.size();
    auto expect = [&](const char *what, std::uint64_t injected,
                      std::uint64_t observed) {
        if (injected != observed) {
            report(out, *this, tail,
                   sim::strprintf("injector reports %llu %s but the "
                                  "trace observes %llu",
                                  static_cast<unsigned long long>(
                                      injected),
                                  what,
                                  static_cast<unsigned long long>(
                                      observed)));
        }
    };
    expect("kills", expected.kills, kills);
    expect("crashes", expected.crashes, crashes);
    expect("restarts", expected.restarts, restarts);
    expect("dropped messages", expected.messagesDropped, drops);
    expect("corrupted messages", expected.messagesCorrupted, corrupts);
    expect("delayed messages", expected.messagesDelayed, delays);
    expect("stalls", expected.stalls, stalls);

    // Checksum failures are observed where the garbled message is
    // *read* (master: Fault Corrupt Discarded; servant: Servant
    // Corrupt Job). A corrupted message can also die unread - lost
    // with a killed receiver or still in flight at the end - so the
    // observations bound the injections from below, never exceed them.
    if (corrupt_discards > expected.messagesCorrupted) {
        report(out, *this, tail,
               sim::strprintf("the trace discards %llu corrupt "
                              "messages but the injector corrupted "
                              "only %llu",
                              static_cast<unsigned long long>(
                                  corrupt_discards),
                              static_cast<unsigned long long>(
                                  expected.messagesCorrupted)));
    }
}

// ---------------------------------------------------------------------
// recovery-consistency
// ---------------------------------------------------------------------

void
RecoveryConsistencyRule::check(
    const std::vector<trace::TraceEvent> &events,
    std::vector<Violation> &out) const
{
    std::map<std::uint32_t, std::size_t> accepted; // job -> event
    std::set<std::uint32_t> retried_here;
    std::set<std::uint32_t> timed_out;      // jobs with a Timeout
    std::set<std::uint32_t> dead_servants;  // Servant Dead params
    for (std::size_t i = 0; i < events.size(); ++i) {
        const auto &ev = events[i];
        const std::uint32_t job = ev.param;
        switch (ev.token) {
          case par::evReceiveResultsBegin: {
            auto it = accepted.find(job);
            if (it != accepted.end()) {
                report(out, *this, i,
                       sim::strprintf(
                           "results of job %u accepted twice (first "
                           "at event %zu) - the duplicate was not "
                           "suppressed",
                           job, it->second));
            } else {
                accepted[job] = i;
            }
            break;
          }
          case par::evFaultDuplicateResult: {
            if (!accepted.count(job)) {
                report(out, *this, i,
                       sim::strprintf(
                           "duplicate result of job %u suppressed "
                           "but no results were ever accepted",
                           job));
            }
            break;
          }
          case par::evFaultTimeout:
            timed_out.insert(job);
            break;
          case par::evFaultServantDead: {
            // Dead stays dead (LivenessTracker): a second marker for
            // the same servant means the liveness table regressed.
            if (!dead_servants.insert(job).second) {
                report(out, *this, i,
                       sim::strprintf("servant %u declared dead "
                                      "twice",
                                      job));
            }
            break;
          }
          case par::evFaultRetry: {
            // Every resend has a cause on record: an ack deadline for
            // this very job, or a dead servant whose orphaned jobs
            // are requeued without individual timeout markers.
            if (!timed_out.count(job) && dead_servants.empty()) {
                report(out, *this, i,
                       sim::strprintf(
                           "job %u retried but no Fault Timeout for "
                           "it and no dead servant precede the retry",
                           job));
            }
            retried_here.insert(job);
            break;
          }
          case par::evFaultJobReassigned: {
            if (!retried_here.count(job)) {
                report(out, *this, i,
                       sim::strprintf("job %u reassigned without a "
                                      "retry marker",
                                      job));
            }
            break;
          }
          default:
            break;
        }
    }
}

// ---------------------------------------------------------------------
// job-coverage
// ---------------------------------------------------------------------

void
JobCoverageRule::check(const std::vector<trace::TraceEvent> &events,
                       std::vector<Violation> &out) const
{
    bool master_done = false;
    std::set<std::uint32_t> sent_jobs;
    std::map<std::uint32_t, std::uint64_t> accepted; // job -> count
    std::uint64_t pixels_written = 0;
    for (const auto &ev : events) {
        switch (ev.token) {
          case par::evMasterDone:
            master_done = true;
            break;
          case par::evJobSend:
            sent_jobs.insert(ev.param);
            break;
          case par::evReceiveResultsBegin:
            ++accepted[ev.param];
            break;
          case par::evWritePixelsBegin:
            pixels_written += ev.param;
            break;
          default:
            break;
        }
    }
    if (!master_done)
        return; // the run was abandoned; coverage cannot be expected

    const std::size_t tail = events.size();
    for (std::uint32_t job : sent_jobs) {
        const auto it = accepted.find(job);
        const std::uint64_t n = it == accepted.end() ? 0 : it->second;
        if (n != 1) {
            report(out, *this, tail,
                   sim::strprintf("job %u was sent but its results "
                                  "were accepted %llu times (expected "
                                  "exactly once)",
                                  job,
                                  static_cast<unsigned long long>(n)));
        }
    }
    if (expectedPixels && pixels_written != *expectedPixels) {
        report(out, *this, tail,
               sim::strprintf("the finished run wrote %llu pixels "
                              "but the image has %llu",
                              static_cast<unsigned long long>(
                                  pixels_written),
                              static_cast<unsigned long long>(
                                  *expectedPixels)));
    }
}

// ---------------------------------------------------------------------
// TraceValidator
// ---------------------------------------------------------------------

TraceValidator
TraceValidator::standard()
{
    TraceValidator v;
    v.addRule(std::make_unique<StreamMonotonicRule>());
    v.addRule(std::make_unique<MergeOrderRule>());
    v.addRule(std::make_unique<ProtocolCausalityRule>());
    v.addRule(std::make_unique<ConservationRule>());
    v.addRule(std::make_unique<LwpStateRule>());
    return v;
}

TraceValidator
TraceValidator::forRayTracer(ConservationExpectations expect)
{
    TraceValidator v;
    v.addRule(std::make_unique<StreamMonotonicRule>());
    v.addRule(std::make_unique<MergeOrderRule>());
    v.addRule(std::make_unique<ProtocolCausalityRule>());
    v.addRule(std::make_unique<ConservationRule>(expect));
    v.addRule(std::make_unique<LwpStateRule>());
    v.addRule(std::make_unique<TokenDictionaryRule>(
        par::rayTracerDictionary()));
    v.addRule(std::make_unique<ActivitySanityRule>(
        par::rayTracerDictionary()));
    return v;
}

TraceValidator
TraceValidator::forFaultRun(faults::FaultStats expect_faults,
                            std::optional<std::uint64_t> expected_pixels)
{
    TraceValidator v;
    v.addRule(std::make_unique<StreamMonotonicRule>());
    v.addRule(std::make_unique<MergeOrderRule>());
    v.addRule(std::make_unique<ProtocolCausalityRule>(
        /*allow_retries=*/true));
    v.addRule(std::make_unique<TokenDictionaryRule>(
        par::rayTracerDictionary()));
    v.addRule(std::make_unique<ActivitySanityRule>(
        par::rayTracerDictionary()));
    v.addRule(std::make_unique<FaultObservationRule>(expect_faults));
    v.addRule(std::make_unique<RecoveryConsistencyRule>());
    v.addRule(std::make_unique<JobCoverageRule>(expected_pixels));
    return v;
}

std::vector<Violation>
TraceValidator::validate(
    const std::vector<trace::TraceEvent> &events) const
{
    std::vector<Violation> all;
    for (const auto &rule : rules) {
        std::vector<Violation> found;
        rule->check(events, found);
        if (found.size() > maxViolationsPerRule) {
            const std::size_t dropped =
                found.size() - maxViolationsPerRule;
            found.resize(maxViolationsPerRule);
            found.push_back(Violation{
                rule->name(), events.size(),
                sim::strprintf("(%zu further violations suppressed)",
                               dropped)});
        }
        all.insert(all.end(), found.begin(), found.end());
    }
    return all;
}

} // namespace validate
} // namespace supmon
