#include "bvh.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace supmon
{
namespace rt
{

Bvh::Bvh(const Scene &s, std::size_t leaf_size) : scene(s)
{
    std::vector<std::uint32_t> bounded;
    for (std::uint32_t i = 0; i < scene.primitives().size(); ++i) {
        if (scene.primitives()[i]->unbounded())
            unboundedPrims.push_back(i);
        else
            bounded.push_back(i);
    }
    if (!bounded.empty())
        build(bounded, 0, bounded.size(), std::max<std::size_t>(1,
                                                                leaf_size));
}

int
Bvh::build(std::vector<std::uint32_t> &idx, std::size_t first,
           std::size_t count, std::size_t leaf_size)
{
    Node node;
    for (std::size_t i = first; i < first + count; ++i)
        node.box.extend(scene.primitives()[idx[i]]->boundingBox());

    const int my_index = static_cast<int>(nodes.size());
    nodes.push_back(node);

    if (count <= leaf_size) {
        nodes[my_index].first =
            static_cast<std::uint32_t>(primIndex.size());
        nodes[my_index].count = static_cast<std::uint32_t>(count);
        for (std::size_t i = first; i < first + count; ++i)
            primIndex.push_back(idx[i]);
        return my_index;
    }

    // Split along the widest axis at the median of box centers.
    const Vec3 extent = node.box.hi - node.box.lo;
    int axis = 0;
    if (extent.y > extent.x)
        axis = 1;
    if (extent.z > (axis == 0 ? extent.x : extent.y))
        axis = 2;

    auto center_on = [this, axis](std::uint32_t p) {
        const Vec3 c = scene.primitives()[p]->boundingBox().center();
        return axis == 0 ? c.x : (axis == 1 ? c.y : c.z);
    };

    auto mid = idx.begin() + static_cast<std::ptrdiff_t>(first + count / 2);
    std::nth_element(idx.begin() + static_cast<std::ptrdiff_t>(first),
                     mid,
                     idx.begin() +
                         static_cast<std::ptrdiff_t>(first + count),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return center_on(a) < center_on(b);
                     });

    const std::size_t half = count / 2;
    const int left = build(idx, first, half, leaf_size);
    const int right = build(idx, first + half, count - half, leaf_size);
    nodes[my_index].left = left;
    nodes[my_index].right = right;
    return my_index;
}

bool
Bvh::intersect(const Ray &ray, double tmin, double tmax, HitRecord &rec,
               TraceCounters &counters) const
{
    bool hit = false;
    double closest = tmax;
    HitRecord tmp;

    for (std::uint32_t p : unboundedPrims) {
        ++counters.primitiveTests;
        if (scene.primitives()[p]->intersect(ray, tmin, closest, tmp)) {
            hit = true;
            closest = tmp.t;
            tmp.primitiveId = p;
            rec = tmp;
        }
    }

    if (nodes.empty())
        return hit;

    int stack[64];
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        const Node &node = nodes[stack[--sp]];
        ++counters.bvhNodeTests;
        if (!node.box.intersects(ray, tmin, closest))
            continue;
        if (node.isLeaf()) {
            for (std::uint32_t i = node.first;
                 i < node.first + node.count; ++i) {
                const std::uint32_t p = primIndex[i];
                ++counters.primitiveTests;
                if (scene.primitives()[p]->intersect(ray, tmin, closest,
                                                     tmp)) {
                    hit = true;
                    closest = tmp.t;
                    tmp.primitiveId = p;
                    rec = tmp;
                }
            }
        } else {
            if (sp + 2 > 64)
                sim::panic("BVH traversal stack overflow");
            stack[sp++] = node.left;
            stack[sp++] = node.right;
        }
    }
    return hit;
}

bool
Bvh::occluded(const Ray &ray, double tmin, double tmax,
              TraceCounters &counters) const
{
    HitRecord tmp;
    for (std::uint32_t p : unboundedPrims) {
        ++counters.primitiveTests;
        if (scene.primitives()[p]->intersect(ray, tmin, tmax, tmp))
            return true;
    }
    if (nodes.empty())
        return false;

    int stack[64];
    int sp = 0;
    stack[sp++] = 0;
    while (sp > 0) {
        const Node &node = nodes[stack[--sp]];
        ++counters.bvhNodeTests;
        if (!node.box.intersects(ray, tmin, tmax))
            continue;
        if (node.isLeaf()) {
            for (std::uint32_t i = node.first;
                 i < node.first + node.count; ++i) {
                ++counters.primitiveTests;
                if (scene.primitives()[primIndex[i]]->intersect(
                        ray, tmin, tmax, tmp))
                    return true;
            }
        } else {
            if (sp + 2 > 64)
                sim::panic("BVH traversal stack overflow");
            stack[sp++] = node.left;
            stack[sp++] = node.right;
        }
    }
    return false;
}

std::size_t
Bvh::depthOf(int node) const
{
    if (node < 0)
        return 0;
    const Node &n = nodes[static_cast<std::size_t>(node)];
    if (n.isLeaf())
        return 1;
    return 1 + std::max(depthOf(n.left), depthOf(n.right));
}

std::size_t
Bvh::depth() const
{
    return nodes.empty() ? 0 : depthOf(0);
}

} // namespace rt
} // namespace supmon
