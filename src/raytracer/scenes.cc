#include "scenes.hh"

#include "sim/logging.hh"

namespace supmon
{
namespace rt
{

Scene
moderateScene()
{
    Scene scene;
    scene.background = {0.08, 0.10, 0.18};

    // 1: ground plane.
    scene.add(std::make_unique<Plane>(Vec3{0, 0, 0}, Vec3{0, 1, 0},
                                      matte({0.55, 0.55, 0.5})));

    // 12 matte spheres in a loose ring.
    const Vec3 palette[4] = {{0.8, 0.25, 0.2},
                             {0.2, 0.6, 0.25},
                             {0.25, 0.35, 0.8},
                             {0.8, 0.7, 0.2}};
    for (int i = 0; i < 12; ++i) {
        const double angle = 2.0 * M_PI * i / 12.0;
        const double radius = 2.4 + 0.35 * ((i % 3) - 1);
        const Vec3 center{radius * std::cos(angle), 0.35,
                          radius * std::sin(angle)};
        scene.add(std::make_unique<Sphere>(center, 0.35,
                                           matte(palette[i % 4])));
    }

    // 4 shiny spheres.
    scene.add(std::make_unique<Sphere>(Vec3{-0.9, 0.7, 0.3}, 0.7,
                                       shiny({0.9, 0.9, 0.95}, 0.6)));
    scene.add(std::make_unique<Sphere>(Vec3{1.0, 0.55, -0.6}, 0.55,
                                       shiny({0.95, 0.7, 0.3}, 0.4)));
    scene.add(std::make_unique<Sphere>(Vec3{0.3, 0.4, 1.2}, 0.4,
                                       shiny({0.4, 0.8, 0.9}, 0.5)));
    scene.add(std::make_unique<Sphere>(Vec3{-1.6, 0.3, -1.4}, 0.3,
                                       shiny({0.8, 0.4, 0.8}, 0.45)));

    // 1 glass sphere.
    scene.add(std::make_unique<Sphere>(Vec3{0.2, 0.85, 2.4}, 0.45,
                                       glass()));

    // 4 boxes.
    scene.add(std::make_unique<Box>(Vec3{-2.6, 0.0, 0.6},
                                    Vec3{-1.9, 0.8, 1.3},
                                    matte({0.7, 0.5, 0.3})));
    scene.add(std::make_unique<Box>(Vec3{1.7, 0.0, 0.8},
                                    Vec3{2.3, 0.5, 1.4},
                                    matte({0.35, 0.6, 0.7})));
    scene.add(std::make_unique<Box>(Vec3{-0.4, 0.0, -2.6},
                                    Vec3{0.5, 1.1, -1.9},
                                    shiny({0.75, 0.75, 0.8}, 0.3)));
    scene.add(std::make_unique<Box>(Vec3{2.0, 0.0, -1.9},
                                    Vec3{2.6, 0.35, -1.3},
                                    matte({0.6, 0.6, 0.25})));

    // 3 triangles (a simple tent).
    const Vec3 apex{-2.2, 1.5, -0.2};
    const Vec3 base_a{-2.9, 0.0, 0.4};
    const Vec3 base_b{-1.5, 0.0, 0.4};
    const Vec3 base_c{-2.2, 0.0, -1.0};
    scene.add(std::make_unique<Triangle>(base_a, base_b, apex,
                                         matte({0.85, 0.5, 0.45})));
    scene.add(std::make_unique<Triangle>(base_b, base_c, apex,
                                         matte({0.75, 0.45, 0.5})));
    scene.add(std::make_unique<Triangle>(base_c, base_a, apex,
                                         matte({0.65, 0.4, 0.55})));

    if (scene.primitiveCount() != 25)
        sim::panic("moderateScene must contain 25 primitives (has %zu)",
                   scene.primitiveCount());

    scene.addLight(PointLight{{4.0, 6.0, 4.0}, {1.0, 0.98, 0.9}, 0.9});
    scene.addLight(PointLight{{-5.0, 4.0, 1.5}, {0.7, 0.75, 0.9}, 0.5});
    return scene;
}

Camera::Setup
moderateCamera()
{
    Camera::Setup setup;
    setup.eye = {0.0, 2.2, 6.5};
    setup.lookAt = {0.0, 0.5, 0.0};
    setup.fovDegrees = 52.0;
    return setup;
}

namespace
{

void
addTetrahedron(Scene &scene, const Vec3 &base, double size,
               const Material &mat)
{
    // Regular-ish tetrahedron with corner at base.
    const Vec3 a = base;
    const Vec3 b = base + Vec3{size, 0.0, 0.0};
    const Vec3 c = base + Vec3{size / 2.0, 0.0, size * 0.8660254};
    const Vec3 d = base + Vec3{size / 2.0, size * 0.8164966,
                               size * 0.2886751};
    scene.add(std::make_unique<Triangle>(a, b, d, mat));
    scene.add(std::make_unique<Triangle>(b, c, d, mat));
    scene.add(std::make_unique<Triangle>(c, a, d, mat));
    scene.add(std::make_unique<Triangle>(a, c, b, mat));
}

void
sierpinski(Scene &scene, const Vec3 &base, double size, unsigned level,
           const Material &mat)
{
    if (level == 0) {
        addTetrahedron(scene, base, size, mat);
        return;
    }
    const double half = size / 2.0;
    sierpinski(scene, base, half, level - 1, mat);
    sierpinski(scene, base + Vec3{half, 0.0, 0.0}, half, level - 1, mat);
    sierpinski(scene, base + Vec3{half / 2.0, 0.0, half * 0.8660254},
               half, level - 1, mat);
    sierpinski(scene,
               base + Vec3{half / 2.0, half * 0.8164966,
                           half * 0.2886751},
               half, level - 1, mat);
}

} // namespace

Scene
fractalPyramid(unsigned level)
{
    Scene scene;
    scene.background = {0.06, 0.07, 0.14};
    scene.add(std::make_unique<Plane>(Vec3{0, 0, 0}, Vec3{0, 1, 0},
                                      matte({0.5, 0.5, 0.55})));
    Material mat = shiny({0.85, 0.65, 0.3}, 0.25);
    sierpinski(scene, Vec3{-1.5, 0.0, -1.3}, 3.0, level, mat);
    scene.addLight(PointLight{{5.0, 7.0, 5.0}, {1.0, 0.97, 0.9}, 0.95});
    scene.addLight(PointLight{{-4.0, 5.0, 2.0}, {0.75, 0.8, 0.95}, 0.45});
    return scene;
}

Camera::Setup
pyramidCamera()
{
    Camera::Setup setup;
    setup.eye = {0.0, 2.4, 5.2};
    setup.lookAt = {0.0, 0.9, 0.0};
    setup.fovDegrees = 50.0;
    return setup;
}

Scene
sphereGrid(unsigned n)
{
    Scene scene;
    scene.background = {0.07, 0.08, 0.15};
    scene.add(std::make_unique<Plane>(Vec3{0, 0, 0}, Vec3{0, 1, 0},
                                      matte({0.5, 0.52, 0.55})));
    const double spacing = 5.0 / (n ? n : 1);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
            const Vec3 c{-2.5 + spacing * (i + 0.5), 0.3,
                         -2.5 + spacing * (j + 0.5)};
            Material mat = ((i + j) % 3 == 0)
                               ? shiny({0.8, 0.7, 0.4}, 0.35)
                               : matte({0.3 + 0.5 * (i % 2),
                                        0.4 + 0.4 * (j % 2), 0.6});
            scene.add(std::make_unique<Sphere>(c, spacing * 0.35, mat));
        }
    }
    scene.addLight(PointLight{{4.0, 6.0, 4.0}, {1.0, 0.98, 0.9}, 0.9});
    return scene;
}

Camera::Setup
sphereGridCamera(unsigned n)
{
    (void)n;
    Camera::Setup setup;
    setup.eye = {0.0, 3.2, 6.0};
    setup.lookAt = {0.0, 0.2, 0.0};
    setup.fovDegrees = 50.0;
    return setup;
}

} // namespace rt
} // namespace supmon
