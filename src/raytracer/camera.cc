#include "camera.hh"

#include <cmath>

namespace supmon
{
namespace rt
{

Camera::Camera(const Setup &setup, unsigned width, unsigned height)
    : imgWidth(width), imgHeight(height)
{
    const double aspect =
        static_cast<double>(width) / static_cast<double>(height);
    const double theta = setup.fovDegrees * M_PI / 180.0;
    const double half_h = std::tan(theta / 2.0);
    const double half_w = aspect * half_h;

    const Vec3 w = (setup.eye - setup.lookAt).normalized();
    const Vec3 u = setup.up.cross(w).normalized();
    const Vec3 v = w.cross(u);

    origin = setup.eye;
    lowerLeft = origin - half_w * u - half_h * v - w;
    horizontal = 2.0 * half_w * u;
    vertical = 2.0 * half_h * v;
}

Ray
Camera::rayThrough(unsigned px, unsigned py, double jx, double jy) const
{
    const double s =
        (static_cast<double>(px) + jx) / static_cast<double>(imgWidth);
    const double t = (static_cast<double>(imgHeight - 1 - py) + jy) /
                     static_cast<double>(imgHeight);
    const Vec3 target = lowerLeft + s * horizontal + t * vertical;
    return Ray{origin, (target - origin).normalized()};
}

} // namespace rt
} // namespace supmon
