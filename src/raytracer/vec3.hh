/**
 * @file
 * 3-vector math for the ray tracing library.
 */

#ifndef RAYTRACER_VEC3_HH
#define RAYTRACER_VEC3_HH

#include <cmath>

namespace supmon
{
namespace rt
{

struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr Vec3() = default;

    constexpr Vec3(double xx, double yy, double zz) : x(xx), y(yy), z(zz)
    {
    }

    constexpr Vec3
    operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3
    operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3
    operator-() const
    {
        return {-x, -y, -z};
    }

    constexpr Vec3
    operator*(double s) const
    {
        return {x * s, y * s, z * s};
    }

    constexpr Vec3
    operator/(double s) const
    {
        return {x / s, y / s, z / s};
    }

    /** Component-wise product (used for colour modulation). */
    constexpr Vec3
    operator*(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    Vec3 &
    operator*=(double s)
    {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    constexpr double
    dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    constexpr Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z,
                x * o.y - y * o.x};
    }

    double
    length() const
    {
        return std::sqrt(dot(*this));
    }

    constexpr double
    lengthSquared() const
    {
        return dot(*this);
    }

    Vec3
    normalized() const
    {
        const double len = length();
        return len > 0.0 ? *this / len : Vec3{0, 0, 0};
    }
};

constexpr Vec3
operator*(double s, const Vec3 &v)
{
    return v * s;
}

/** Mirror @p v about the (unit) normal @p n. */
inline Vec3
reflect(const Vec3 &v, const Vec3 &n)
{
    return v - 2.0 * v.dot(n) * n;
}

/**
 * Refract @p v (unit) at the surface with (unit) normal @p n.
 * @param eta ratio of refractive indices (n_from / n_to).
 * @param out refracted direction on success.
 * @return false on total internal reflection.
 */
inline bool
refract(const Vec3 &v, const Vec3 &n, double eta, Vec3 &out)
{
    const double cosi = -v.dot(n);
    const double k = 1.0 - eta * eta * (1.0 - cosi * cosi);
    if (k < 0.0)
        return false;
    out = eta * v + (eta * cosi - std::sqrt(k)) * n;
    return true;
}

/** Clamp all components to [lo, hi]. */
inline Vec3
clamp(const Vec3 &v, double lo, double hi)
{
    auto cl = [lo, hi](double a) {
        return a < lo ? lo : (a > hi ? hi : a);
    };
    return {cl(v.x), cl(v.y), cl(v.z)};
}

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_VEC3_HH
