/**
 * @file
 * Geometric primitives: sphere, plane, triangle and axis-aligned box
 * (parallelepiped - the bounding volume shape the paper's future-work
 * section proposes).
 */

#ifndef RAYTRACER_PRIMITIVE_HH
#define RAYTRACER_PRIMITIVE_HH

#include <cstdint>
#include <limits>
#include <memory>

#include "raytracer/material.hh"
#include "raytracer/vec3.hh"

namespace supmon
{
namespace rt
{

struct Ray
{
    Vec3 origin;
    Vec3 dir; // unit length

    Vec3
    at(double t) const
    {
        return origin + dir * t;
    }
};

struct HitRecord
{
    double t = std::numeric_limits<double>::infinity();
    Vec3 point;
    Vec3 normal; // unit, pointing against the ray
    const Material *material = nullptr;
    std::uint32_t primitiveId = 0;
    /** True if the ray hit the outside of the surface (the geometric
     *  normal faced the ray); false when leaving a solid. */
    bool frontFace = true;
};

/** Axis-aligned bounding box. */
struct Aabb
{
    Vec3 lo{std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
    Vec3 hi{-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

    void
    extend(const Vec3 &p)
    {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }

    void
    extend(const Aabb &o)
    {
        extend(o.lo);
        extend(o.hi);
    }

    Vec3
    center() const
    {
        return (lo + hi) * 0.5;
    }

    /** Slab test; @return true if the ray hits within [tmin, tmax]. */
    bool intersects(const Ray &ray, double tmin, double tmax) const;

    bool
    valid() const
    {
        return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z;
    }
};

class Primitive
{
  public:
    explicit Primitive(Material mat) : material(mat)
    {
    }

    virtual ~Primitive() = default;

    /**
     * Intersect with @p ray; on a hit with t in (tmin, tmax) fill
     * @p rec and return true.
     */
    virtual bool intersect(const Ray &ray, double tmin, double tmax,
                           HitRecord &rec) const = 0;

    /** Bounding box (planes are unbounded: valid() == false). */
    virtual Aabb boundingBox() const = 0;

    /** True if the primitive cannot be put into a finite box. */
    virtual bool
    unbounded() const
    {
        return false;
    }

    const Material &
    surface() const
    {
        return material;
    }

  protected:
    Material material;
};

class Sphere : public Primitive
{
  public:
    Sphere(const Vec3 &center, double radius, Material mat)
        : Primitive(mat), c(center), r(radius)
    {
    }

    bool intersect(const Ray &ray, double tmin, double tmax,
                   HitRecord &rec) const override;
    Aabb boundingBox() const override;

    const Vec3 &
    center() const
    {
        return c;
    }

    double
    radius() const
    {
        return r;
    }

  private:
    Vec3 c;
    double r;
};

class Plane : public Primitive
{
  public:
    /** Plane through @p point with unit normal @p normal. */
    Plane(const Vec3 &point, const Vec3 &normal, Material mat)
        : Primitive(mat), p(point), n(normal.normalized())
    {
    }

    bool intersect(const Ray &ray, double tmin, double tmax,
                   HitRecord &rec) const override;
    Aabb boundingBox() const override;

    bool
    unbounded() const override
    {
        return true;
    }

  private:
    Vec3 p;
    Vec3 n;
};

class Triangle : public Primitive
{
  public:
    Triangle(const Vec3 &a, const Vec3 &b, const Vec3 &c, Material mat)
        : Primitive(mat), v0(a), e1(b - a), e2(c - a)
    {
    }

    bool intersect(const Ray &ray, double tmin, double tmax,
                   HitRecord &rec) const override;
    Aabb boundingBox() const override;

  private:
    Vec3 v0;
    Vec3 e1;
    Vec3 e2;
};

/** Axis-aligned box (solid parallelepiped). */
class Box : public Primitive
{
  public:
    Box(const Vec3 &lo, const Vec3 &hi, Material mat)
        : Primitive(mat)
    {
        bounds.extend(lo);
        bounds.extend(hi);
    }

    bool intersect(const Ray &ray, double tmin, double tmax,
                   HitRecord &rec) const override;
    Aabb boundingBox() const override;

  private:
    Aabb bounds;
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_PRIMITIVE_HH
