/**
 * @file
 * Hierarchical bounding volume acceleration based on parallelepipeds
 * (axis-aligned boxes) - the extension the paper's conclusion
 * announces as future work: "we plan to implement a hierarchical
 * bounding volume scheme based on parallelopipeds".
 *
 * The BVH is built over the bounded primitives of a scene (unbounded
 * planes are kept in a flat list and always tested). Traversal counts
 * node tests and primitive tests separately so the cost model can
 * price them differently - box/plane intersections are exactly the
 * operations the paper wanted to vectorize on the VFPU, which the
 * cost model exposes as a configurable speedup (see cost.hh).
 */

#ifndef RAYTRACER_BVH_HH
#define RAYTRACER_BVH_HH

#include <vector>

#include "raytracer/scene.hh"

namespace supmon
{
namespace rt
{

class Bvh
{
  public:
    /** Build over @p scene (which must outlive the Bvh). */
    explicit Bvh(const Scene &scene, std::size_t leaf_size = 4);

    bool intersect(const Ray &ray, double tmin, double tmax,
                   HitRecord &rec, TraceCounters &counters) const;

    bool occluded(const Ray &ray, double tmin, double tmax,
                  TraceCounters &counters) const;

    std::size_t
    nodeCount() const
    {
        return nodes.size();
    }

    /** Tree depth (for tests). */
    std::size_t depth() const;

  private:
    struct Node
    {
        Aabb box;
        /** Children for inner nodes (right = left + 1 subtree skip). */
        int left = -1;
        int right = -1;
        /** Leaf payload: range in primIndex. */
        std::uint32_t first = 0;
        std::uint32_t count = 0;

        bool
        isLeaf() const
        {
            return count > 0;
        }
    };

    int build(std::vector<std::uint32_t> &idx, std::size_t first,
              std::size_t count, std::size_t leaf_size);
    std::size_t depthOf(int node) const;

    const Scene &scene;
    std::vector<Node> nodes;
    std::vector<std::uint32_t> primIndex;
    std::vector<std::uint32_t> unboundedPrims;
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_BVH_HH
