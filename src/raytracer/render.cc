#include "render.hh"

#include <cmath>

namespace supmon
{
namespace rt
{

namespace
{
constexpr double rayEpsilon = 1e-6;
constexpr double shadowEpsilon = 1e-4;
} // namespace

Renderer::Renderer(const Scene &s, const Camera &camera,
                   const Options &options)
    : scene(s), cam(camera), opts(options)
{
    if (opts.useBvh)
        bvh = std::make_unique<Bvh>(scene);
}

bool
Renderer::closestHit(const Ray &ray, double tmin, double tmax,
                     HitRecord &rec, TraceCounters &counters) const
{
    if (bvh)
        return bvh->intersect(ray, tmin, tmax, rec, counters);
    return scene.intersect(ray, tmin, tmax, rec, counters);
}

bool
Renderer::inShadow(const Ray &ray, double tmax,
                   TraceCounters &counters) const
{
    if (bvh)
        return bvh->occluded(ray, shadowEpsilon, tmax, counters);
    return scene.occluded(ray, shadowEpsilon, tmax, counters);
}

Vec3
Renderer::shade(const Ray &ray, const HitRecord &rec, unsigned depth,
                TraceCounters &counters) const
{
    ++counters.shadingEvals;
    const Material &mat = *rec.material;

    // Ambient term.
    Vec3 color = mat.ambient * mat.color * scene.ambientLight;

    // Direct illumination with shadow rays.
    for (const auto &light : scene.lights()) {
        const Vec3 to_light = light.position - rec.point;
        const double dist = to_light.length();
        const Vec3 l = to_light / dist;
        const Ray shadow_ray{rec.point, l};
        if (inShadow(shadow_ray, dist, counters))
            continue;
        const double n_dot_l = rec.normal.dot(l);
        if (n_dot_l > 0.0) {
            color += mat.diffuse * n_dot_l * light.intensity *
                     (mat.color * light.color);
            const Vec3 r = reflect(-l, rec.normal);
            const double r_dot_v = -r.dot(ray.dir);
            if (r_dot_v > 0.0) {
                color += mat.specular *
                         std::pow(r_dot_v, mat.shininess) *
                         light.intensity * light.color;
            }
        }
    }

    if (depth == 0)
        return color;

    // Reflected ray for shiny objects.
    if (mat.reflectivity > 0.0) {
        const Vec3 rdir = reflect(ray.dir, rec.normal).normalized();
        const Ray reflected{rec.point + rdir * shadowEpsilon, rdir};
        color += mat.reflectivity *
                 traceRay(reflected, depth - 1, counters);
    }

    // Transmitted ray for non-opaque objects.
    if (mat.transparency > 0.0) {
        // Entering a solid refracts into the denser medium; leaving
        // refracts back out (the hit record tracks which face we hit).
        const double eta = rec.frontFace ? 1.0 / mat.refractiveIndex
                                         : mat.refractiveIndex;
        Vec3 tdir;
        if (refract(ray.dir, rec.normal, eta, tdir)) {
            const Ray transmitted{rec.point + tdir * shadowEpsilon,
                                  tdir.normalized()};
            color += mat.transparency *
                     traceRay(transmitted, depth - 1, counters);
        } else {
            // Total internal reflection.
            const Vec3 rdir = reflect(ray.dir, rec.normal).normalized();
            const Ray reflected{rec.point + rdir * shadowEpsilon, rdir};
            color += mat.transparency *
                     traceRay(reflected, depth - 1, counters);
        }
    }

    return color;
}

Vec3
Renderer::traceRay(const Ray &ray, unsigned depth,
                   TraceCounters &counters) const
{
    ++counters.raysTraced;
    HitRecord rec;
    if (!closestHit(ray, rayEpsilon,
                    std::numeric_limits<double>::infinity(), rec,
                    counters)) {
        // A ray which does not intersect any object of the scene gets
        // assigned the background colour without further processing.
        return scene.background;
    }
    return shade(ray, rec, depth, counters);
}

Vec3
Renderer::tracePixel(std::size_t linear_index, sim::Random &rng,
                     TraceCounters &counters) const
{
    const unsigned x = static_cast<unsigned>(linear_index % cam.width());
    const unsigned y = static_cast<unsigned>(linear_index / cam.width());
    Vec3 sum{0, 0, 0};
    const unsigned samples = std::max(1u, opts.oversampling);
    for (unsigned s = 0; s < samples; ++s) {
        double jx = 0.5;
        double jy = 0.5;
        if (samples > 1) {
            jx = rng.uniformReal();
            jy = rng.uniformReal();
        }
        const Ray ray = cam.rayThrough(x, y, jx, jy);
        sum += traceRay(ray, opts.maxDepth, counters);
    }
    return sum / static_cast<double>(samples);
}

TraceCounters
Renderer::renderImage(Image &img, std::uint64_t seed) const
{
    TraceCounters counters;
    sim::Random rng(seed);
    for (std::size_t i = 0; i < img.pixelCount(); ++i)
        img.setLinear(i, tracePixel(i, rng, counters));
    return counters;
}

} // namespace rt
} // namespace supmon
