/**
 * @file
 * The Whitted-style recursive ray tracer (paper, section 4.1;
 * Whitted 1980): the colour of an eye ray combines the shaded object
 * colour, the colour of the reflected ray for shiny surfaces, and
 * the colour of the transmitted ray for non-opaque surfaces, with
 * shadow rays towards each light source.
 */

#ifndef RAYTRACER_RENDER_HH
#define RAYTRACER_RENDER_HH

#include "raytracer/bvh.hh"
#include "raytracer/camera.hh"
#include "raytracer/image.hh"
#include "raytracer/scene.hh"
#include "sim/random.hh"

namespace supmon
{
namespace rt
{

class Renderer
{
  public:
    struct Options
    {
        /** Maximum recursion depth for secondary rays. */
        unsigned maxDepth = 4;
        /** Rays per pixel (the master's oversampling scheme). */
        unsigned oversampling = 1;
        /** Use the bounding-volume hierarchy (future-work variant). */
        bool useBvh = false;
    };

    Renderer(const Scene &scene, const Camera &camera,
             const Options &options);

    /** Colour of a single ray (recursive). */
    Vec3 traceRay(const Ray &ray, unsigned depth,
                  TraceCounters &counters) const;

    /**
     * Colour of pixel @p linear_index (scan order), averaging
     * `oversampling` jittered samples.
     */
    Vec3 tracePixel(std::size_t linear_index, sim::Random &rng,
                    TraceCounters &counters) const;

    /** Render the full image sequentially (reference renderer). */
    TraceCounters renderImage(Image &img, std::uint64_t seed = 1) const;

    const Options &
    options() const
    {
        return opts;
    }

  private:
    bool closestHit(const Ray &ray, double tmin, double tmax,
                    HitRecord &rec, TraceCounters &counters) const;
    bool inShadow(const Ray &ray, double tmax,
                  TraceCounters &counters) const;
    Vec3 shade(const Ray &ray, const HitRecord &rec, unsigned depth,
               TraceCounters &counters) const;

    const Scene &scene;
    const Camera &cam;
    Options opts;
    std::unique_ptr<Bvh> bvh;
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_RENDER_HH
