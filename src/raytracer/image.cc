#include "image.hh"

#include <cmath>
#include <cstdio>

namespace supmon
{
namespace rt
{

std::size_t
Image::missingPixels() const
{
    std::size_t n = 0;
    for (auto w_ : writes) {
        if (w_ == 0)
            ++n;
    }
    return n;
}

std::size_t
Image::duplicatedPixels() const
{
    std::size_t n = 0;
    for (auto w_ : writes) {
        if (w_ > 1)
            ++n;
    }
    return n;
}

bool
Image::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%u %u\n255\n", w, h);
    for (const auto &p : pixels) {
        const Vec3 c = clamp(p, 0.0, 1.0);
        // Gamma 2.0 for display.
        const unsigned char rgb[3] = {
            static_cast<unsigned char>(255.99 * std::sqrt(c.x)),
            static_cast<unsigned char>(255.99 * std::sqrt(c.y)),
            static_cast<unsigned char>(255.99 * std::sqrt(c.z))};
        std::fwrite(rgb, 1, 3, f);
    }
    std::fclose(f);
    return true;
}

double
Image::meanLuminance() const
{
    if (pixels.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : pixels)
        sum += (p.x + p.y + p.z) / 3.0;
    return sum / static_cast<double>(pixels.size());
}

} // namespace rt
} // namespace supmon
