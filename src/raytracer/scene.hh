/**
 * @file
 * Scene container: primitives, point lights, background colour, and
 * the intersection entry points with work counters.
 *
 * The work counters matter beyond profiling curiosity: when the ray
 * tracer runs on the simulated SUPRENUM, the *simulated* CPU time of
 * a ray is derived from the counted intersection tests and shading
 * evaluations (see cost.hh). The large per-ray variance the paper's
 * load balancing discussion depends on thus comes from the real
 * geometry.
 */

#ifndef RAYTRACER_SCENE_HH
#define RAYTRACER_SCENE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "raytracer/primitive.hh"

namespace supmon
{
namespace rt
{

struct PointLight
{
    Vec3 position;
    Vec3 color{1.0, 1.0, 1.0};
    double intensity = 1.0;
};

/** Work counters accumulated while tracing. */
struct TraceCounters
{
    std::uint64_t primitiveTests = 0;
    std::uint64_t bvhNodeTests = 0;
    std::uint64_t shadingEvals = 0;
    std::uint64_t raysTraced = 0;

    TraceCounters &
    operator+=(const TraceCounters &o)
    {
        primitiveTests += o.primitiveTests;
        bvhNodeTests += o.bvhNodeTests;
        shadingEvals += o.shadingEvals;
        raysTraced += o.raysTraced;
        return *this;
    }
};

class Bvh;

class Scene
{
  public:
    Scene() = default;
    Scene(Scene &&) = default;
    Scene &operator=(Scene &&) = default;

    void
    add(std::unique_ptr<Primitive> prim)
    {
        prims.push_back(std::move(prim));
    }

    void
    addLight(PointLight light)
    {
        pointLights.push_back(light);
    }

    std::size_t
    primitiveCount() const
    {
        return prims.size();
    }

    const std::vector<std::unique_ptr<Primitive>> &
    primitives() const
    {
        return prims;
    }

    const std::vector<PointLight> &
    lights() const
    {
        return pointLights;
    }

    Vec3 background{0.05, 0.06, 0.12};
    Vec3 ambientLight{1.0, 1.0, 1.0};

    /**
     * Closest intersection by brute force over all primitives
     * (the paper's ray tracer; the BVH is the future-work variant).
     */
    bool intersect(const Ray &ray, double tmin, double tmax,
                   HitRecord &rec, TraceCounters &counters) const;

    /** Any-hit query for shadow rays. */
    bool occluded(const Ray &ray, double tmin, double tmax,
                  TraceCounters &counters) const;

    /**
     * Rough simulated memory footprint of the replicated scene
     * description (every servant stores the whole scene; the paper
     * names this as ray partitioning's storage disadvantage).
     */
    std::uint64_t descriptionBytes() const;

  private:
    std::vector<std::unique_ptr<Primitive>> prims;
    std::vector<PointLight> pointLights;
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_SCENE_HH
