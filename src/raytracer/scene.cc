#include "scene.hh"

namespace supmon
{
namespace rt
{

bool
Scene::intersect(const Ray &ray, double tmin, double tmax,
                 HitRecord &rec, TraceCounters &counters) const
{
    bool hit = false;
    double closest = tmax;
    HitRecord tmp;
    for (std::size_t i = 0; i < prims.size(); ++i) {
        ++counters.primitiveTests;
        if (prims[i]->intersect(ray, tmin, closest, tmp)) {
            hit = true;
            closest = tmp.t;
            tmp.primitiveId = static_cast<std::uint32_t>(i);
            rec = tmp;
        }
    }
    return hit;
}

bool
Scene::occluded(const Ray &ray, double tmin, double tmax,
                TraceCounters &counters) const
{
    HitRecord tmp;
    for (const auto &prim : prims) {
        ++counters.primitiveTests;
        if (prim->intersect(ray, tmin, tmax, tmp))
            return true;
    }
    return false;
}

std::uint64_t
Scene::descriptionBytes() const
{
    // A primitive record in a 1990 scene description: geometry,
    // material and bookkeeping - roughly 200 bytes each - plus lights
    // and header.
    return 4096 + prims.size() * 200 + pointLights.size() * 64;
}

} // namespace rt
} // namespace supmon
