/**
 * @file
 * The simulated-CPU cost model: translate counted ray tracing work
 * into MC68020/68882 execution time on a SUPRENUM node.
 *
 * The paper does not publish per-operation timings; the constants
 * below are calibrated (DESIGN.md section 5) so that the mean time to
 * trace one ray of the moderate scene is on the order of 10 ms -
 * consistent with the master-cycle lengths visible in Figure 7 and
 * with the requirement that one hybrid_mon call (~100 us) is "more
 * than two orders of magnitude smaller than the duration of the
 * measured activities".
 *
 * The vectorSpeedup models the VFPU future-work item ("plane
 * intersection operations will be vectorized"): it divides the
 * geometry-test cost while leaving the scalar shading cost untouched.
 */

#ifndef RAYTRACER_COST_HH
#define RAYTRACER_COST_HH

#include "raytracer/scene.hh"
#include "sim/types.hh"

namespace supmon
{
namespace rt
{

struct CostModel
{
    /** Scalar cost of one ray/primitive intersection test. */
    sim::Tick perPrimitiveTest = sim::microseconds(200);
    /** Cost of one BVH node (parallelepiped) slab test. */
    sim::Tick perBvhNodeTest = sim::microseconds(70);
    /** Cost of one shading evaluation (Phong + recursion setup). */
    sim::Tick perShadingEval = sim::microseconds(450);
    /** Fixed cost per ray (setup, normalization, bookkeeping). */
    sim::Tick perRayOverhead = sim::microseconds(250);
    /**
     * Vectorization factor applied to geometry tests (1.0 = scalar
     * 68882; ~4-8 when batched on the WTL2264/65 VFPU).
     */
    double vectorSpeedup = 1.0;

    /** Simulated CPU time for the counted work. */
    sim::Tick
    costOf(const TraceCounters &c) const
    {
        const double geometry =
            static_cast<double>(c.primitiveTests) *
                static_cast<double>(perPrimitiveTest) +
            static_cast<double>(c.bvhNodeTests) *
                static_cast<double>(perBvhNodeTest);
        const double scalar =
            static_cast<double>(c.shadingEvals) *
                static_cast<double>(perShadingEval) +
            static_cast<double>(c.raysTraced) *
                static_cast<double>(perRayOverhead);
        const double speedup = vectorSpeedup >= 1.0 ? vectorSpeedup
                                                    : 1.0;
        return static_cast<sim::Tick>(geometry / speedup + scalar);
    }
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_COST_HH
