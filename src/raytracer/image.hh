/**
 * @file
 * Simple RGB image buffer with PPM output and completeness tracking.
 *
 * Completeness tracking (was every pixel written exactly once?) is a
 * debugging aid in the spirit of the paper: a wrong master/servant
 * protocol typically shows up as missing or doubly-assigned pixels.
 */

#ifndef RAYTRACER_IMAGE_HH
#define RAYTRACER_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "raytracer/vec3.hh"

namespace supmon
{
namespace rt
{

class Image
{
  public:
    Image(unsigned width, unsigned height)
        : w(width), h(height), pixels(static_cast<std::size_t>(width) *
                                      height),
          writes(static_cast<std::size_t>(width) * height, 0)
    {
    }

    unsigned
    width() const
    {
        return w;
    }

    unsigned
    height() const
    {
        return h;
    }

    std::size_t
    pixelCount() const
    {
        return pixels.size();
    }

    void
    set(unsigned x, unsigned y, const Vec3 &color)
    {
        const std::size_t i = index(x, y);
        pixels[i] = color;
        ++writes[i];
    }

    /** Linear-index variant (scan order, as the pixel queue uses). */
    void
    setLinear(std::size_t i, const Vec3 &color)
    {
        pixels.at(i) = color;
        ++writes.at(i);
    }

    const Vec3 &
    at(unsigned x, unsigned y) const
    {
        return pixels[index(x, y)];
    }

    const Vec3 &
    atLinear(std::size_t i) const
    {
        return pixels.at(i);
    }

    /** Number of pixels never written. */
    std::size_t missingPixels() const;

    /** Number of pixels written more than once. */
    std::size_t duplicatedPixels() const;

    /** Write an 8-bit PPM (P6) file. @return false on I/O error. */
    bool writePpm(const std::string &path) const;

    /** Mean channel value (useful for regression tests). */
    double meanLuminance() const;

  private:
    std::size_t
    index(unsigned x, unsigned y) const
    {
        return static_cast<std::size_t>(y) * w + x;
    }

    unsigned w;
    unsigned h;
    std::vector<Vec3> pixels;
    std::vector<std::uint16_t> writes;
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_IMAGE_HH
