#include "primitive.hh"

#include <algorithm>
#include <cmath>

namespace supmon
{
namespace rt
{

bool
Aabb::intersects(const Ray &ray, double tmin, double tmax) const
{
    const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
    const double d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
    const double lo_[3] = {lo.x, lo.y, lo.z};
    const double hi_[3] = {hi.x, hi.y, hi.z};
    for (int a = 0; a < 3; ++a) {
        const double inv = 1.0 / d[a];
        double t0 = (lo_[a] - o[a]) * inv;
        double t1 = (hi_[a] - o[a]) * inv;
        if (inv < 0.0)
            std::swap(t0, t1);
        tmin = std::max(tmin, t0);
        tmax = std::min(tmax, t1);
        if (tmax < tmin)
            return false;
    }
    return true;
}

bool
Sphere::intersect(const Ray &ray, double tmin, double tmax,
                  HitRecord &rec) const
{
    const Vec3 oc = ray.origin - c;
    const double half_b = oc.dot(ray.dir);
    const double cc = oc.lengthSquared() - r * r;
    const double disc = half_b * half_b - cc;
    if (disc < 0.0)
        return false;
    const double sq = std::sqrt(disc);
    double t = -half_b - sq;
    if (t <= tmin || t >= tmax) {
        t = -half_b + sq;
        if (t <= tmin || t >= tmax)
            return false;
    }
    rec.t = t;
    rec.point = ray.at(t);
    const Vec3 outward = (rec.point - c) / r;
    rec.frontFace = outward.dot(ray.dir) < 0.0;
    rec.normal = rec.frontFace ? outward : -outward;
    rec.material = &material;
    return true;
}

Aabb
Sphere::boundingBox() const
{
    Aabb box;
    box.extend(c - Vec3{r, r, r});
    box.extend(c + Vec3{r, r, r});
    return box;
}

bool
Plane::intersect(const Ray &ray, double tmin, double tmax,
                 HitRecord &rec) const
{
    const double denom = n.dot(ray.dir);
    if (std::fabs(denom) < 1e-12)
        return false;
    const double t = (p - ray.origin).dot(n) / denom;
    if (t <= tmin || t >= tmax)
        return false;
    rec.t = t;
    rec.point = ray.at(t);
    rec.frontFace = denom < 0.0;
    rec.normal = rec.frontFace ? n : -n;
    rec.material = &material;
    return true;
}

Aabb
Plane::boundingBox() const
{
    return Aabb{}; // invalid: unbounded
}

bool
Triangle::intersect(const Ray &ray, double tmin, double tmax,
                    HitRecord &rec) const
{
    // Moeller-Trumbore.
    const Vec3 pvec = ray.dir.cross(e2);
    const double det = e1.dot(pvec);
    if (std::fabs(det) < 1e-12)
        return false;
    const double inv_det = 1.0 / det;
    const Vec3 tvec = ray.origin - v0;
    const double u = tvec.dot(pvec) * inv_det;
    if (u < 0.0 || u > 1.0)
        return false;
    const Vec3 qvec = tvec.cross(e1);
    const double v = ray.dir.dot(qvec) * inv_det;
    if (v < 0.0 || u + v > 1.0)
        return false;
    const double t = e2.dot(qvec) * inv_det;
    if (t <= tmin || t >= tmax)
        return false;
    rec.t = t;
    rec.point = ray.at(t);
    const Vec3 normal = e1.cross(e2).normalized();
    rec.frontFace = normal.dot(ray.dir) < 0.0;
    rec.normal = rec.frontFace ? normal : -normal;
    rec.material = &material;
    return true;
}

Aabb
Triangle::boundingBox() const
{
    Aabb box;
    box.extend(v0);
    box.extend(v0 + e1);
    box.extend(v0 + e2);
    // Guard against degenerate flat boxes breaking the slab test.
    const Vec3 eps{1e-9, 1e-9, 1e-9};
    box.extend(box.lo - eps);
    box.extend(box.hi + eps);
    return box;
}

bool
Box::intersect(const Ray &ray, double tmin, double tmax,
               HitRecord &rec) const
{
    // Slab test that also yields the entry parameter and face normal.
    const double o[3] = {ray.origin.x, ray.origin.y, ray.origin.z};
    const double d[3] = {ray.dir.x, ray.dir.y, ray.dir.z};
    const double lo_[3] = {bounds.lo.x, bounds.lo.y, bounds.lo.z};
    const double hi_[3] = {bounds.hi.x, bounds.hi.y, bounds.hi.z};

    double t_enter = tmin;
    double t_exit = tmax;
    int enter_axis = -1;
    double enter_sign = 1.0;
    for (int a = 0; a < 3; ++a) {
        const double inv = 1.0 / d[a];
        double t0 = (lo_[a] - o[a]) * inv;
        double t1 = (hi_[a] - o[a]) * inv;
        double sign = -1.0;
        if (inv < 0.0) {
            std::swap(t0, t1);
            sign = 1.0;
        }
        if (t0 > t_enter) {
            t_enter = t0;
            enter_axis = a;
            enter_sign = sign;
        }
        t_exit = std::min(t_exit, t1);
        if (t_exit < t_enter)
            return false;
    }

    double t = t_enter;
    bool inside = false;
    if (enter_axis < 0 || t <= tmin) {
        // Ray starts inside the box: exit hit.
        t = t_exit;
        inside = true;
        if (t <= tmin || t >= tmax)
            return false;
    }

    rec.t = t;
    rec.point = ray.at(t);
    rec.frontFace = !inside;
    if (inside) {
        // Normal of the exit face, flipped against the ray.
        Vec3 n{0, 0, 0};
        double best = std::numeric_limits<double>::infinity();
        const double faces[6] = {rec.point.x - lo_[0],
                                 hi_[0] - rec.point.x,
                                 rec.point.y - lo_[1],
                                 hi_[1] - rec.point.y,
                                 rec.point.z - lo_[2],
                                 hi_[2] - rec.point.z};
        const Vec3 normals[6] = {{-1, 0, 0}, {1, 0, 0},  {0, -1, 0},
                                 {0, 1, 0},  {0, 0, -1}, {0, 0, 1}};
        for (int f = 0; f < 6; ++f) {
            if (std::fabs(faces[f]) < best) {
                best = std::fabs(faces[f]);
                n = normals[f];
            }
        }
        rec.normal = n.dot(ray.dir) < 0.0 ? n : -n;
    } else {
        Vec3 n{0, 0, 0};
        if (enter_axis == 0)
            n = {enter_sign, 0, 0};
        else if (enter_axis == 1)
            n = {0, enter_sign, 0};
        else
            n = {0, 0, enter_sign};
        rec.normal = n;
    }
    rec.material = &material;
    return true;
}

Aabb
Box::boundingBox() const
{
    return bounds;
}

} // namespace rt
} // namespace supmon
