/**
 * @file
 * Procedural test scenes.
 *
 *  - moderateScene(): 25 primitives, "a scene of moderate complexity
 *    (the scene contained 25 primitive objects)" used for all of the
 *    paper's utilization measurements (Figures 7-10);
 *  - fractalPyramid(): "a more complex scene comprising more than 250
 *    primitives (a fractal pyramid)" - a Sierpinski tetrahedron -
 *    with which the servants reached over 99 % utilization;
 *  - sphereGrid(): parameterized scene family for the complexity
 *    sweep ablation.
 */

#ifndef RAYTRACER_SCENES_HH
#define RAYTRACER_SCENES_HH

#include "raytracer/camera.hh"
#include "raytracer/scene.hh"

namespace supmon
{
namespace rt
{

/** The 25-primitive moderate scene. */
Scene moderateScene();

/** Camera framing the moderate scene. */
Camera::Setup moderateCamera();

/**
 * The fractal pyramid: a Sierpinski tetrahedron of @p level
 * subdivisions (4^level small tetrahedra, 4 triangles each) over a
 * ground plane. level 3 yields 257 primitives (> 250, as in the
 * paper).
 */
Scene fractalPyramid(unsigned level = 3);

/** Camera framing the fractal pyramid. */
Camera::Setup pyramidCamera();

/** An n x n grid of spheres over a ground plane (n*n + 1 prims). */
Scene sphereGrid(unsigned n);

/** Camera framing the sphere grid. */
Camera::Setup sphereGridCamera(unsigned n);

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_SCENES_HH
