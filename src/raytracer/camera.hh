/**
 * @file
 * Pinhole camera generating eye rays through image-plane pixels
 * (Figure 4 of the paper: eye, screen, scene).
 */

#ifndef RAYTRACER_CAMERA_HH
#define RAYTRACER_CAMERA_HH

#include "raytracer/primitive.hh"
#include "raytracer/vec3.hh"

namespace supmon
{
namespace rt
{

class Camera
{
  public:
    struct Setup
    {
        Vec3 eye{0.0, 1.5, 6.0};
        Vec3 lookAt{0.0, 0.5, 0.0};
        Vec3 up{0.0, 1.0, 0.0};
        /** Vertical field of view in degrees. */
        double fovDegrees = 55.0;
    };

    Camera(const Setup &setup, unsigned width, unsigned height);

    /**
     * Eye ray through pixel (px, py); (jx, jy) in [0,1) select the
     * sample position inside the pixel (0.5/0.5 = center; random for
     * the oversampling scheme the master organizes).
     */
    Ray rayThrough(unsigned px, unsigned py, double jx = 0.5,
                   double jy = 0.5) const;

    unsigned
    width() const
    {
        return imgWidth;
    }

    unsigned
    height() const
    {
        return imgHeight;
    }

  private:
    unsigned imgWidth;
    unsigned imgHeight;
    Vec3 origin;
    Vec3 lowerLeft;
    Vec3 horizontal;
    Vec3 vertical;
};

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_CAMERA_HH
