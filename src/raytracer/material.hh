/**
 * @file
 * Surface materials for the Whitted illumination model.
 *
 * The colour of a ray is a combination of the object's own (shaded)
 * colour, the colour of the reflected ray for "shiny" objects, and
 * the colour of the transmitted ray for non-opaque objects
 * (paper, section 4.1; Whitted 1980).
 */

#ifndef RAYTRACER_MATERIAL_HH
#define RAYTRACER_MATERIAL_HH

#include "raytracer/vec3.hh"

namespace supmon
{
namespace rt
{

struct Material
{
    /** Base surface colour. */
    Vec3 color{0.8, 0.8, 0.8};
    /** Ambient reflection coefficient. */
    double ambient = 0.1;
    /** Diffuse (Lambert) coefficient. */
    double diffuse = 0.7;
    /** Specular (Phong) coefficient. */
    double specular = 0.3;
    /** Phong exponent. */
    double shininess = 32.0;
    /** Fraction of light mirrored ("shiny" objects). */
    double reflectivity = 0.0;
    /** Fraction of light transmitted (non-opaque objects). */
    double transparency = 0.0;
    /** Refractive index for transmitted rays. */
    double refractiveIndex = 1.5;
};

/** @{ a few stock materials used by the procedural scenes */
inline Material
matte(const Vec3 &color)
{
    Material m;
    m.color = color;
    m.specular = 0.1;
    m.shininess = 8.0;
    return m;
}

inline Material
shiny(const Vec3 &color, double reflectivity = 0.5)
{
    Material m;
    m.color = color;
    m.specular = 0.8;
    m.shininess = 96.0;
    m.reflectivity = reflectivity;
    return m;
}

inline Material
glass(double transparency = 0.85, double index = 1.5)
{
    Material m;
    m.color = {0.95, 0.95, 0.95};
    m.diffuse = 0.1;
    m.specular = 0.9;
    m.shininess = 128.0;
    m.reflectivity = 0.1;
    m.transparency = transparency;
    m.refractiveIndex = index;
    return m;
}
/** @} */

} // namespace rt
} // namespace supmon

#endif // RAYTRACER_MATERIAL_HH
